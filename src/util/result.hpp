// Lightweight Result<T> for recoverable failures (wire-format parse errors,
// validation rejections) where exceptions would be noise: malformed input is
// an expected outcome for networking code, not a programming error.
//
// Modeled after the std::expected interface (C++23) so a later migration is
// mechanical; we target C++20 here.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace stellar::util {

/// Error payload: a short machine-readable code plus a human-readable message.
struct Error {
  std::string code;     ///< e.g. "bgp.update.truncated"
  std::string message;  ///< e.g. "attribute length 52 exceeds remaining 12 bytes"

  friend bool operator==(const Error&, const Error&) = default;
};

/// Result of an operation that can fail in an expected way.
///
/// Invariant: holds exactly one of a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Access the value. Precondition: ok().
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<0>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// Access the error. Precondition: !ok().
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& { return ok() ? std::get<0>(data_) : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

/// Result for operations that return no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Convenience factory: Result<T>(Error{code, message}) reads poorly at call sites.
inline Error MakeError(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace stellar::util
