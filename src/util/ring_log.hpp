// Bounded append-only sample log: keeps the most recent `capacity` entries
// and the total count ever pushed. Long chaos runs push per-change waiting
// times and failure codes for days of simulated time; an unbounded vector
// there is a slow leak. Iteration order is insertion order over the retained
// window, so percentile math over begin()/end() is unchanged as long as the
// window covers the samples of interest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

namespace stellar::util {

template <typename T>
class RingLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 65'536;

  explicit RingLog(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  void push_back(const T& value) { emplace(value); }
  void push_back(T&& value) { emplace(std::move(value)); }

  /// Retained samples (<= capacity).
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  /// Samples ever pushed, including evicted ones.
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Samples evicted to honor the capacity bound.
  [[nodiscard]] std::uint64_t evicted() const { return total_ - data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T& front() const { return data_.front(); }
  [[nodiscard]] const T& back() const { return data_.back(); }

  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

  void clear() {
    data_.clear();
    total_ = 0;
  }

 private:
  template <typename U>
  void emplace(U&& value) {
    data_.push_back(std::forward<U>(value));
    ++total_;
    if (data_.size() > capacity_) data_.pop_front();
  }

  std::size_t capacity_;
  std::deque<T> data_;
  std::uint64_t total_ = 0;
};

}  // namespace stellar::util
