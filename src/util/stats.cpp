#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace stellar::util {

double Mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("Mean: empty sample");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleVariance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("SampleVariance: need >= 2 samples");
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double SampleStdDev(std::span<const double> xs) { return std::sqrt(SampleVariance(xs)); }

double Percentile(std::span<const double> xs, double pct) {
  if (xs.empty()) throw std::invalid_argument("Percentile: empty sample");
  if (pct < 0.0 || pct > 100.0) throw std::invalid_argument("Percentile: pct out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Median(std::span<const double> xs) { return Percentile(xs, 50.0); }

double ConfidenceHalfWidth95(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return 1.96 * SampleStdDev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

namespace {

// Lanczos approximation of ln(Gamma(x)), x > 0.
double LnGamma(double x) {
  static constexpr double kCoef[6] = {76.18009172947146,  -86.50532032941677,
                                      24.01409824083091,  -1.231739572450155,
                                      0.1208650973866179e-2, -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double ser = 1.000000000190015;
  for (double c : kCoef) ser += c / ++y;
  return -tmp + std::log(2.5066282746310005 * ser / x);
}

// Continued fraction for the incomplete beta function (Numerical Recipes
// "betacf" scheme with modified Lentz iteration).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-12;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front =
      LnGamma(a + b) - LnGamma(a) - LnGamma(b) + a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("StudentTCdf: df must be positive");
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

WelchResult WelchTTest(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("WelchTTest: both samples need >= 2 observations");
  }
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = SampleVariance(a) / na;
  const double vb = SampleVariance(b) / nb;
  WelchResult r;
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) {
    // Degenerate samples with identical constant values: no evidence either way.
    r.t_statistic = 0.0;
    r.degrees_of_freedom = na + nb - 2.0;
    r.p_value_one_tailed = Mean(a) > Mean(b) ? 0.0 : 1.0;
    return r;
  }
  r.t_statistic = (Mean(a) - Mean(b)) / denom;
  r.degrees_of_freedom = (va + vb) * (va + vb) /
                         (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  r.p_value_one_tailed = 1.0 - StudentTCdf(r.t_statistic, r.degrees_of_freedom);
  return r;
}

LinearFit LinearRegression(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 3) {
    throw std::invalid_argument("LinearRegression: need paired samples, n >= 3");
  }
  const double n = static_cast<double>(xs.size());
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) throw std::invalid_argument("LinearRegression: constant x");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - fit.predict(xs[i]);
    ss_res += e * e;
  }
  fit.r_squared = syy == 0.0 ? 1.0 : 1.0 - ss_res / syy;

  const double dof = n - 2.0;
  const double s2 = ss_res / dof;  // Residual variance.
  fit.slope_stderr = std::sqrt(s2 / sxx);
  fit.intercept_stderr = std::sqrt(s2 * (1.0 / n + mx * mx / sxx));

  // Invert the t CDF for the 97.5% point by bisection (dof is small, this is
  // evaluated once per fit — clarity over speed).
  double lo = 0.0;
  double hi = 100.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (StudentTCdf(mid, dof) < 0.975 ? lo : hi) = mid;
  }
  const double t975 = 0.5 * (lo + hi);
  fit.slope_ci95 = t975 * fit.slope_stderr;
  fit.intercept_ci95 = t975 * fit.intercept_stderr;
  return fit;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q <= 0.0 || q > 1.0) throw std::invalid_argument("EmpiricalCdf::quantile: q in (0,1]");
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

}  // namespace stellar::util
