// Deterministic random number generation for simulation workloads.
//
// Every stochastic component takes an explicit Rng so experiments are
// reproducible bit-for-bit from a seed; nothing in the library reads global
// entropy.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace stellar::util {

/// Seedable RNG facade over a fixed engine with the distribution helpers the
/// traffic generators need. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    assert(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Poisson-distributed count with the given mean.
  std::int64_t poisson(double mean) {
    assert(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Normal with mean mu and standard deviation sigma.
  double normal(double mu, double sigma) {
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto (heavy-tailed) with scale x_m > 0 and shape alpha > 0.
  /// Used for IXP member port capacities and attack source volumes.
  double pareto(double x_m, double alpha) {
    assert(x_m > 0.0 && alpha > 0.0);
    const double u = std::uniform_real_distribution<double>(
        std::numeric_limits<double>::min(), 1.0)(engine_);
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Index into `weights` chosen proportionally to the (non-negative) weights.
  /// Precondition: at least one weight is positive.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      assert(w >= 0.0);
      total += w;
    }
    assert(total > 0.0);
    double x = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;  // Floating-point slack: fall back to last.
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child stream (for parallel generators).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace stellar::util
