#include "ixp/fabric.hpp"

#include <algorithm>

namespace stellar::ixp {

void Fabric::register_owner(const net::Prefix4& space, filter::PortId port) {
  owners_.emplace_back(space, port);
  std::sort(owners_.begin(), owners_.end(), [](const auto& a, const auto& b) {
    return a.first.length() > b.first.length();
  });
}

bool Fabric::lookup_egress(net::IPv4Address dst, filter::PortId& port_out) const {
  for (const auto& [space, port] : owners_) {  // Sorted by specificity: LPM.
    if (space.contains(dst)) {
      port_out = port;
      return true;
    }
  }
  return false;
}

Fabric::BinReport Fabric::deliver(std::span<const net::FlowSample> offered, double bin_s) {
  BinReport report;
  std::map<filter::PortId, std::vector<net::FlowSample>> per_port_demand;

  for (const auto& sample : offered) {
    const double mbps = sample.mbps(bin_s);
    report.offered_mbps += mbps;
    filter::PortId egress = 0;
    if (!lookup_egress(sample.key.dst_ip, egress)) {
      report.unrouted_mbps += mbps;
      continue;
    }
    if (ingress_blackhole_ && ingress_blackhole_(sample.key.src_mac, sample.key.dst_ip)) {
      report.rtbh_dropped_mbps += mbps;
      report.rtbh_dropped_peers.insert(sample.key.src_mac);
      continue;
    }
    per_port_demand[egress].push_back(sample);
  }

  for (auto& [port, demand] : per_port_demand) {
    // Ingress filtering mode applies the same policy before the platform:
    // identical classification, but congestion is still evaluated at the
    // member port (capacity is the member's either way).
    filter::PortBinResult result = edge_router_.deliver(port, demand, bin_s);
    report.delivered_mbps += result.delivered_mbps;
    report.rule_dropped_mbps += result.rule_dropped_mbps;
    report.shaper_dropped_mbps += result.shaper_dropped_mbps;
    report.congestion_dropped_mbps += result.congestion_dropped_mbps;
    report.delivered.insert(report.delivered.end(), result.delivered.begin(),
                            result.delivered.end());
    report.per_port.emplace(port, std::move(result));
  }
  return report;
}

}  // namespace stellar::ixp
