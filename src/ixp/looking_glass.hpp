// Looking glass: the debugging interface members use against the route
// server (paper §4.3: "members can rely on looking glasses for debugging").
// Read-only textual queries over the route server's RIB.
#pragma once

#include <string>
#include <vector>

#include "ixp/route_server.hpp"

namespace stellar::ixp {

class LookingGlass {
 public:
  explicit LookingGlass(const RouteServer& server) : server_(server) {}

  /// All paths the route server holds for a prefix, rendered like
  /// "100.10.10.10/32 via AS65010 next-hop 10.0.1.1 communities 65535:666".
  [[nodiscard]] std::vector<std::string> show_route(const net::Prefix4& prefix) const;
  [[nodiscard]] std::vector<std::string> show_route6(const net::Prefix6& prefix) const;

  /// Summary line per prefix in the RIB.
  [[nodiscard]] std::vector<std::string> show_rib_summary() const;

  /// Session / hygiene counters.
  [[nodiscard]] std::string show_status() const;

 private:
  const RouteServer& server_;
};

}  // namespace stellar::ixp
