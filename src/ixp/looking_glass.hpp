// Looking glass: the debugging interface members use against the route
// server (paper §4.3: "members can rely on looking glasses for debugging").
// Read-only textual queries over the route server's RIB.
#pragma once

#include <string>
#include <vector>

#include "ixp/route_server.hpp"

namespace stellar::ixp {

class LookingGlass {
 public:
  explicit LookingGlass(const RouteServer& server) : server_(server) {}

  /// All paths the route server holds for a prefix, rendered like
  /// "100.10.10.10/32 via AS65010 next-hop 10.0.1.1 communities 65535:666".
  [[nodiscard]] std::vector<std::string> show_route(const net::Prefix4& prefix) const;
  [[nodiscard]] std::vector<std::string> show_route6(const net::Prefix6& prefix) const;

  /// Summary line per prefix in the RIB.
  [[nodiscard]] std::vector<std::string> show_rib_summary() const;

  /// Session / hygiene counters.
  [[nodiscard]] std::string show_status() const;

  /// Process-wide metrics view (paper §4.3's debugging story extended to the
  /// observability plane): Prometheus-style text exposition of the global
  /// obs registry.
  [[nodiscard]] std::string show_metrics() const;

  /// Per-stage signal-path latency breakdown for a signaling prefix, one
  /// line per stage ("stage t=<sim s> +<delta s>"); empty if never traced.
  [[nodiscard]] std::vector<std::string> show_signal_path(const net::Prefix4& prefix) const;

 private:
  const RouteServer& server_;
};

}  // namespace stellar::ixp
