// IXP switching fabric (data plane): L2 forwarding from member ingress to the
// destination member's egress port, with
//   - RTBH null-interface drops at *ingress* (traffic whose sending member
//     routed the destination into the blackhole next-hop never crosses the
//     platform), and
//   - Stellar QoS policies applied at the *egress* member port (paper §4.5
//     chooses egress filtering), including port-capacity congestion.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "filter/edge_router.hpp"
#include "net/flow.hpp"

namespace stellar::ixp {

class Fabric {
 public:
  /// Predicate: does the sending member (identified by router MAC) blackhole
  /// traffic towards dst? Wired to MemberRouter::blackholes.
  using IngressBlackholeFn = std::function<bool(const net::MacAddress&, net::IPv4Address)>;

  /// Where the platform filters: egress (paper's choice) or ingress
  /// (the §4.5 "future work" variant for capacity-constrained platforms;
  /// see bench/ablation_egress_vs_ingress).
  enum class FilterLocation { kEgress, kIngress };

  explicit Fabric(filter::EdgeRouter& edge_router,
                  FilterLocation location = FilterLocation::kEgress)
      : edge_router_(edge_router), location_(location) {}

  /// Registers that `space` is reachable via `port` (the owning member).
  void register_owner(const net::Prefix4& space, filter::PortId port);

  void set_ingress_blackhole_fn(IngressBlackholeFn fn) { ingress_blackhole_ = std::move(fn); }

  /// Longest-prefix-match owner lookup; returns false if unrouted.
  [[nodiscard]] bool lookup_egress(net::IPv4Address dst, filter::PortId& port_out) const;

  struct BinReport {
    double offered_mbps = 0.0;
    double unrouted_mbps = 0.0;            ///< No member owns the destination.
    double rtbh_dropped_mbps = 0.0;        ///< Ingress null-interface drops.
    double delivered_mbps = 0.0;
    double rule_dropped_mbps = 0.0;        ///< Stellar drop rules.
    double shaper_dropped_mbps = 0.0;      ///< Stellar shaper excess.
    double congestion_dropped_mbps = 0.0;  ///< Member port overload.
    /// Flows that actually reached members, after all filtering.
    std::vector<net::FlowSample> delivered;
    /// Per egress-port breakdown.
    std::map<filter::PortId, filter::PortBinResult> per_port;
    /// Distinct ingress members whose traffic was RTBH-dropped.
    std::set<net::MacAddress> rtbh_dropped_peers;
  };

  /// Pushes one bin of offered traffic through the platform.
  BinReport deliver(std::span<const net::FlowSample> offered, double bin_s);

 private:
  filter::EdgeRouter& edge_router_;
  FilterLocation location_;
  /// Owner table sorted by descending prefix length for LPM.
  std::vector<std::pair<net::Prefix4, filter::PortId>> owners_;
  IngressBlackholeFn ingress_blackhole_;
};

}  // namespace stellar::ixp
