// Top-level IXP facade: wires the edge router, switching fabric, route
// server, hygiene databases and member routers into one platform — the
// substrate Stellar deploys onto. Also provides MakeLargeIxp(), a synthetic
// L-IXP (the paper's deployment target: >800 members, Tbps-scale, heavy-
// tailed port capacities, ~30% RTBH honoring).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "filter/edge_router.hpp"
#include "ixp/fabric.hpp"
#include "ixp/irr.hpp"
#include "ixp/member.hpp"
#include "ixp/route_server.hpp"
#include "sim/event_queue.hpp"
#include "traffic/generators.hpp"
#include "util/rng.hpp"

namespace stellar::ixp {

struct MemberSpec {
  bgp::Asn asn = 0;
  std::string name;
  double port_capacity_mbps = 10'000.0;
  net::Prefix4 address_space;
  /// Optional IPv6 allocation (announced and IRR6-registered when set).
  std::optional<net::Prefix6> address_space6;
  MemberPolicy policy;
};

class Ixp {
 public:
  struct Config {
    bgp::Asn asn = 64500;
    net::IPv4Address blackhole_next_hop{net::IPv4Address(10, 99, 0, 66)};
    /// Edge-router hardware limits; zero pools = unlimited (functional tests).
    filter::TcamLimits tcam{};
    filter::CpuModelConfig cpu{};
    Fabric::FilterLocation filter_location = Fabric::FilterLocation::kEgress;
    bool enable_rpki = true;
  };

  Ixp(sim::EventQueue& queue, Config config);
  explicit Ixp(sim::EventQueue& queue) : Ixp(queue, Config{}) {}

  /// Registers a member: IRR route object + ROA for its space, an edge-router
  /// port, fabric ownership, and an eBGP session to the route server. The
  /// member's own prefix is announced immediately.
  MemberRouter& add_member(const MemberSpec& spec);

  [[nodiscard]] MemberRouter* member(bgp::Asn asn);
  [[nodiscard]] const std::vector<std::unique_ptr<MemberRouter>>& members() const {
    return members_;
  }

  /// Runs the event queue forward so sessions establish and updates settle.
  void settle(double seconds = 30.0);

  /// Pushes one bin of offered traffic through the platform.
  Fabric::BinReport deliver_bin(std::span<const net::FlowSample> offered, double bin_s) {
    return fabric_.deliver(offered, bin_s);
  }

  /// Traffic-generator handles for all members except `exclude` (the victim).
  [[nodiscard]] std::vector<traffic::SourceMember> source_members(bgp::Asn exclude = 0) const;

  [[nodiscard]] RouteServer& route_server() { return route_server_; }
  [[nodiscard]] filter::EdgeRouter& edge_router() { return edge_router_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] IrrDatabase& irr() { return irr_; }
  [[nodiscard]] Irr6Database& irr6() { return irr6_; }
  [[nodiscard]] RpkiValidator& rpki() { return rpki_; }
  [[nodiscard]] sim::EventQueue& queue() { return queue_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  sim::EventQueue& queue_;
  Config config_;
  IrrDatabase irr_;
  Irr6Database irr6_;
  RpkiValidator rpki_;
  BogonList bogons_ = BogonList::Standard();
  Bogon6List bogons6_ = Bogon6List::Standard();
  filter::EdgeRouter edge_router_;
  Fabric fabric_;
  RouteServer route_server_;
  std::vector<std::unique_ptr<MemberRouter>> members_;
  std::map<bgp::Asn, MemberRouter*> by_asn_;
  std::map<net::MacAddress, MemberRouter*> by_mac_;
};

/// Parameters of the synthetic L-IXP.
struct LargeIxpParams {
  int member_count = 800;
  /// Fraction of members that honor RTBH (§2.4: ~70% do not).
  double rtbh_honor_fraction = 0.30;
  /// Fraction of non-honoring members that at least participate (accept the
  /// community but filter the /32 — they would honor if they fixed configs).
  double participate_fraction = 0.95;
  std::uint64_t seed = 42;
  Ixp::Config config{};
};

/// Builds a synthetic large IXP: member ASNs 65001..., /20 address spaces,
/// heavy-tailed port capacities (1G/10G/100G/400G mix), RTBH policies drawn
/// per `rtbh_honor_fraction`, all sessions established (the queue is run).
std::unique_ptr<Ixp> MakeLargeIxp(sim::EventQueue& queue, const LargeIxpParams& params);

}  // namespace stellar::ixp
