#include "ixp/member.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace stellar::ixp {

MemberRouter::MemberRouter(sim::EventQueue& queue, MemberInfo info,
                           net::IPv4Address blackhole_next_hop,
                           net::IPv6Address blackhole_next_hop6)
    : queue_(queue),
      info_(std::move(info)),
      blackhole_next_hop_(blackhole_next_hop),
      blackhole_next_hop6_(blackhole_next_hop6) {}

bgp::Session* MemberRouter::active_session() {
  return reconnector_ ? reconnector_->session() : session_.get();
}

void MemberRouter::teardown_session() {
  if (reconnector_) {
    reconnector_->stop();
    reconnector_.reset();
  }
  if (session_) {
    session_->stop();
    session_.reset();
  }
}

void MemberRouter::connect(std::shared_ptr<bgp::Endpoint> transport) {
  teardown_session();
  bgp::SessionConfig config;
  config.local_asn = info_.asn;
  config.router_id = info_.router_ip;
  config.announce_ipv6_unicast = info_.address_space6.has_value();
  session_ = std::make_unique<bgp::Session>(queue_, std::move(transport), config);
  session_->set_update_handler([this](const bgp::UpdateMessage& u) { on_update(u); });
  session_->start();
}

void MemberRouter::connect_resilient(bgp::ReconnectingSession::TransportFactory factory,
                                     bgp::ReconnectPolicy policy) {
  teardown_session();
  bgp::SessionConfig config;
  config.local_asn = info_.asn;
  config.router_id = info_.router_ip;
  config.announce_ipv6_unicast = info_.address_space6.has_value();
  reconnector_ = std::make_unique<bgp::ReconnectingSession>(queue_, std::move(factory),
                                                            config, policy);
  reconnector_->set_update_handler([this](const bgp::UpdateMessage& u) { on_update(u); });
  reconnector_->set_established_handler([this](bgp::Session& session) {
    // Resync both directions on every establishment (including the first —
    // connect_resilient may have replaced a live session, withdrawing our
    // routes): ask for everything we may have missed, then replay everything
    // the route server lost with our old session.
    session.request_route_refresh(bgp::kAfiIPv4);
    if (info_.address_space6) session.request_route_refresh(bgp::kAfiIPv6);
    replay_announcements();
  });
  reconnector_->start();
}

void MemberRouter::replay_announcements() {
  for (const auto& [prefix, attrs] : announced_) {
    send_announce(prefix, attrs.communities, attrs.extended);
  }
  for (const auto& [prefix, attrs] : announced6_) {
    send_announce6(prefix, attrs.communities, attrs.extended);
  }
}

void MemberRouter::announce(const net::Prefix4& prefix, std::vector<bgp::Community> communities,
                            std::vector<bgp::ExtendedCommunity> extended) {
  if (!active_session()) throw std::logic_error("MemberRouter: connect() before announcing");
  announced_[prefix] = AnnouncedAttrs{communities, extended};
  send_announce(prefix, std::move(communities), std::move(extended));
}

void MemberRouter::send_announce(const net::Prefix4& prefix,
                                 std::vector<bgp::Community> communities,
                                 std::vector<bgp::ExtendedCommunity> extended) {
  // Extended communities mean a Stellar signal: open the signal-path trace
  // at the moment the member's BGP stack emits the announcement.
  if (!extended.empty()) {
    obs::tracer().mark(prefix.str(), "member_announce", queue_.now().count());
  }
  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {info_.asn}}};
  update.attrs.next_hop = info_.router_ip;
  update.attrs.communities = std::move(communities);
  update.attrs.extended_communities = std::move(extended);
  update.announced.push_back(bgp::Nlri4{0, prefix});
  active_session()->announce(std::move(update));
}

void MemberRouter::withdraw(const net::Prefix4& prefix) {
  if (!active_session()) throw std::logic_error("MemberRouter: connect() before announcing");
  announced_.erase(prefix);
  bgp::UpdateMessage update;
  update.withdrawn.push_back(bgp::Nlri4{0, prefix});
  active_session()->announce(std::move(update));
}

void MemberRouter::announce6(const net::Prefix6& prefix,
                             std::vector<bgp::Community> communities,
                             std::vector<bgp::ExtendedCommunity> extended) {
  if (!active_session()) throw std::logic_error("MemberRouter: connect() before announcing");
  announced6_[prefix] = AnnouncedAttrs{communities, extended};
  send_announce6(prefix, std::move(communities), std::move(extended));
}

void MemberRouter::send_announce6(const net::Prefix6& prefix,
                                  std::vector<bgp::Community> communities,
                                  std::vector<bgp::ExtendedCommunity> extended) {
  bgp::UpdateMessage update;
  update.attrs.origin = bgp::Origin::kIgp;
  update.attrs.as_path = {{bgp::AsPathSegment::Type::kSequence, {info_.asn}}};
  update.attrs.communities = std::move(communities);
  update.attrs.extended_communities = std::move(extended);
  bgp::MpReachIPv6 reach;
  // Peering-LAN v6 next-hop derived from the member's v4 address
  // (IPv4-mapped form keeps the simulation self-describing).
  net::IPv6Address::Bytes nh{};
  nh[10] = 0xff;
  nh[11] = 0xff;
  const std::uint32_t v4 = info_.router_ip.value();
  nh[12] = static_cast<std::uint8_t>(v4 >> 24);
  nh[13] = static_cast<std::uint8_t>(v4 >> 16);
  nh[14] = static_cast<std::uint8_t>(v4 >> 8);
  nh[15] = static_cast<std::uint8_t>(v4);
  reach.next_hop = net::IPv6Address(nh);
  reach.nlri.push_back(prefix);
  update.attrs.mp_reach_ipv6 = std::move(reach);
  active_session()->announce(std::move(update));
}

void MemberRouter::withdraw6(const net::Prefix6& prefix) {
  if (!active_session()) throw std::logic_error("MemberRouter: connect() before announcing");
  announced6_.erase(prefix);
  bgp::UpdateMessage update;
  bgp::MpUnreachIPv6 unreach;
  unreach.withdrawn.push_back(prefix);
  update.attrs.mp_unreach_ipv6 = std::move(unreach);
  active_session()->announce(std::move(update));
}

void MemberRouter::update_policy(MemberPolicy policy) {
  info_.policy = policy;
  if (!policy.accepts_more_specifics) {
    // Tightened: evict more-specifics accepted under the old policy.
    for (const auto& route : rib_.snapshot()) {
      if (route.prefix.length() > 24) {
        rib_.withdraw(route.prefix, route.peer, route.path_id);
        blackholed_.erase(route.prefix);
      }
    }
    for (const auto& route : rib6_.snapshot()) {
      if (route.prefix.length() > 48) {
        rib6_.withdraw(route.prefix, route.peer, route.path_id);
        blackholed6_.erase(route.prefix);
      }
    }
  }
  bgp::Session* session = active_session();
  if (session != nullptr && session->established()) {
    // Relaxed (or unchanged): ask the route server to re-send everything so
    // the new import policy sees routes it previously filtered.
    session->request_route_refresh(bgp::kAfiIPv4);
    if (info_.address_space6) session->request_route_refresh(bgp::kAfiIPv6);
  }
}

bool MemberRouter::blackholes(net::IPv4Address dst) const {
  // Longest-prefix-match semantics: the blackhole route is by construction
  // the most specific route for its covered hosts, so containment suffices.
  for (const auto& p : blackholed_) {
    if (p.contains(dst)) return true;
  }
  return false;
}

bool MemberRouter::blackholes6(const net::IPv6Address& dst) const {
  for (const auto& p : blackholed6_) {
    if (p.contains(dst)) return true;
  }
  return false;
}

void MemberRouter::on_update(const bgp::UpdateMessage& update) {
  for (const auto& nlri : update.withdrawn) {
    rib_.withdraw(nlri.prefix, 0, nlri.path_id);
    blackholed_.erase(nlri.prefix);
  }
  for (const auto& nlri : update.announced) {
    // Default import filter: reject more-specifics than /24 (the blackhole
    // adoption barrier) unless the member configured the exception.
    if (nlri.prefix.length() > 24 && !info_.policy.accepts_more_specifics) {
      ++rejected_more_specifics_;
      continue;
    }
    bgp::Route route;
    route.prefix = nlri.prefix;
    route.peer = 0;
    route.path_id = nlri.path_id;
    route.attrs = update.attrs;
    rib_.insert(std::move(route));

    const bool is_blackhole_route = update.attrs.has_community(bgp::kBlackhole) &&
                                    update.attrs.next_hop == blackhole_next_hop_;
    if (is_blackhole_route && info_.policy.participates_in_rtbh) {
      blackholed_.insert(nlri.prefix);
    } else {
      blackholed_.erase(nlri.prefix);
    }
  }

  // IPv6 unicast via MP attributes. The default-config boundary is /48: the
  // common inter-domain maximum, so /128 blackholes need the same explicit
  // exception as v4 /32s.
  if (update.attrs.mp_unreach_ipv6) {
    for (const auto& prefix : update.attrs.mp_unreach_ipv6->withdrawn) {
      rib6_.withdraw(prefix, 0, 0);
      blackholed6_.erase(prefix);
    }
  }
  if (update.attrs.mp_reach_ipv6) {
    for (const auto& prefix : update.attrs.mp_reach_ipv6->nlri) {
      if (prefix.length() > 48 && !info_.policy.accepts_more_specifics) {
        ++rejected_more_specifics_;
        continue;
      }
      bgp::Route6 route;
      route.prefix = prefix;
      route.peer = 0;
      route.path_id = 0;
      route.attrs = update.attrs;
      rib6_.insert(std::move(route));

      const bool is_blackhole_route =
          update.attrs.has_community(bgp::kBlackhole) &&
          update.attrs.mp_reach_ipv6->next_hop == blackhole_next_hop6_;
      if (is_blackhole_route && info_.policy.participates_in_rtbh) {
        blackholed6_.insert(prefix);
      } else {
        blackholed6_.erase(prefix);
      }
    }
  }
}

}  // namespace stellar::ixp
