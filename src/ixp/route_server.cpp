#include "ixp/route_server.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace stellar::ixp {

namespace {
/// ADD-PATH path-id assigned to routes from a member peer on the controller
/// session: stable per peer, nonzero as RFC 7911 requires for sent paths.
bgp::PathId ControllerPathId(bgp::PeerId peer) { return peer; }
}  // namespace

RouteServer::RouteServer(sim::EventQueue& queue, Config config)
    : queue_(queue), config_(config) {
  assert(config_.irr != nullptr && "route server requires an IRR database");
}

bgp::Community RouteServer::exclude_peer(bgp::Asn peer) const {
  return bgp::Community(0, static_cast<std::uint16_t>(peer));
}

bgp::Community RouteServer::include_peer(bgp::Asn peer) const {
  return bgp::Community(static_cast<std::uint16_t>(config_.asn),
                        static_cast<std::uint16_t>(peer));
}

bgp::Community RouteServer::announce_to_none() const {
  return bgp::Community(0, static_cast<std::uint16_t>(config_.asn));
}

std::shared_ptr<bgp::Endpoint> RouteServer::accept_member(bgp::Asn member_asn) {
  auto [server_side, member_side] = bgp::MakeLink(queue_);
  bgp::SessionConfig session_config;
  session_config.local_asn = config_.asn;
  session_config.router_id = config_.router_id;
  session_config.announce_ipv6_unicast = config_.irr6 != nullptr;

  // A reconnecting member reuses its slot (stable PeerId across flaps, no
  // unbounded members_ growth under session churn). Only a dead session may
  // be replaced; a second concurrent session for an ASN gets its own slot.
  std::size_t slot = members_.size();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].asn == member_asn &&
        (members_[i].session == nullptr || members_[i].session->state() == bgp::SessionState::kClosed)) {
      slot = i;
      break;
    }
  }
  if (slot == members_.size()) {
    members_.push_back(MemberPeer{member_asn, nullptr, {}, {}});
  } else {
    // Fresh Adj-RIB-Out: the rejoining router remembers nothing we exported.
    members_[slot].exported.clear();
    members_[slot].exported6.clear();
  }
  const bgp::PeerId peer = static_cast<bgp::PeerId>(slot + 1);  // Index + 1.
  auto session = std::make_unique<bgp::Session>(queue_, server_side, session_config);
  session->set_update_handler(
      [this, peer](const bgp::UpdateMessage& u) { on_member_update(peer, u); });
  // Implicit withdraw (paper §4.2.1): a failed member session takes all of
  // that member's routes — and thereby its blackholing signals — with it.
  session->set_state_handler([this, peer](bgp::SessionState state) {
    if (state == bgp::SessionState::kClosed) on_member_session_closed(peer);
  });
  session->set_refresh_handler([this, peer](const bgp::RouteRefreshMessage& refresh) {
    on_member_refresh(peer, refresh);
  });
  session->start();
  members_[slot].session = std::move(session);
  return member_side;
}

std::shared_ptr<bgp::Endpoint> RouteServer::accept_controller() {
  auto [server_side, controller_side] = bgp::MakeLink(queue_);
  bgp::SessionConfig session_config;
  session_config.local_asn = config_.asn;  // iBGP: controller shares the IXP ASN.
  session_config.router_id = config_.router_id;
  session_config.add_path_tx = true;
  controller_session_ = std::make_unique<bgp::Session>(queue_, server_side, session_config);
  // ROUTE-REFRESH from the controller (post-reconnect resync): replay the
  // full Adj-RIB-In so it can rebuild desired state from scratch.
  controller_session_->set_refresh_handler([this](const bgp::RouteRefreshMessage& refresh) {
    if (refresh.afi != bgp::kAfiIPv4) return;
    rib_.for_each([this](const bgp::Route& route) { controller_announce(route); });
  });
  controller_session_->start();
  // Initial RIB synchronization: queued updates flush on establishment.
  rib_.for_each([this](const bgp::Route& route) { controller_announce(route); });
  return controller_side;
}

std::size_t RouteServer::established_member_sessions() const {
  std::size_t n = 0;
  for (const auto& m : members_) {
    if (m.session->established()) ++n;
  }
  return n;
}

bgp::Asn RouteServer::member_asn_of_peer(bgp::PeerId peer) const {
  assert(peer >= 1 && peer <= members_.size());
  return members_[peer - 1].asn;
}

void RouteServer::on_member_session_closed(bgp::PeerId peer) {
  // Collect this peer's prefixes, drop them, withdraw them everywhere.
  // A session failure implicitly withdraws the peer's blackhole routes, so it
  // must log the same events as an explicit withdraw — otherwise the journal
  // and looking glass undercount removals (the stored attrs describe the
  // signaling scope of the route being torn down).
  std::vector<net::Prefix4> touched;
  std::vector<std::pair<net::Prefix4, bgp::PathAttributes>> blackholed;
  rib_.for_each([&](const bgp::Route& route) {
    if (route.peer != peer) return;
    touched.push_back(route.prefix);
    if (route.attrs.has_community(bgp::kBlackhole)) {
      blackholed.emplace_back(route.prefix, route.attrs);
    }
  });
  if (rib_.withdraw_peer(peer) > 0) {
    for (const auto& [prefix, attrs] : blackholed) {
      log_blackhole_event(members_[peer - 1], prefix, attrs, /*withdrawn=*/true);
    }
    for (const auto& prefix : touched) {
      controller_withdraw(prefix, peer);
      reexport(prefix);
    }
  }
  std::vector<net::Prefix6> touched6;
  std::vector<net::Prefix6> blackholed6;
  rib6_.for_each([&](const bgp::Route6& route) {
    if (route.peer != peer) return;
    touched6.push_back(route.prefix);
    if (route.attrs.has_community(bgp::kBlackhole)) blackholed6.push_back(route.prefix);
  });
  if (rib6_.withdraw_peer(peer) > 0) {
    for (const auto& prefix : blackholed6) {
      events6_.push_back(
          BlackholeEvent6{queue_.now().count(), members_[peer - 1].asn, prefix, true});
    }
    for (const auto& prefix : touched6) reexport6(prefix);
  }
}

void RouteServer::on_member_update(bgp::PeerId peer, const bgp::UpdateMessage& update) {
  MemberPeer& from = members_[peer - 1];
  std::vector<net::Prefix4> touched;

  for (const auto& nlri : update.withdrawn) {
    const auto existing = rib_.routes_for(nlri.prefix);
    const bool was_blackhole =
        std::any_of(existing.begin(), existing.end(), [&](const bgp::Route& r) {
          return r.peer == peer && r.attrs.has_community(bgp::kBlackhole);
        });
    if (rib_.withdraw(nlri.prefix, peer)) {
      touched.push_back(nlri.prefix);
      controller_withdraw(nlri.prefix, peer);
      if (was_blackhole) log_blackhole_event(from, nlri.prefix, update.attrs, /*withdrawn=*/true);
    }
  }

  for (const auto& nlri : update.announced) {
    if (!import_accept(from, nlri, update.attrs)) continue;
    bgp::Route route;
    route.prefix = nlri.prefix;
    route.peer = peer;
    route.path_id = 0;  // Members do not use ADD-PATH northbound.
    route.attrs = update.attrs;
    if (rib_.insert(route)) {
      touched.push_back(nlri.prefix);
      route.path_id = ControllerPathId(peer);
      controller_announce(route);
      if (update.attrs.has_community(bgp::kBlackhole)) {
        log_blackhole_event(from, nlri.prefix, update.attrs, /*withdrawn=*/false);
      }
    }
  }

  for (const auto& prefix : touched) reexport(prefix);

  // IPv6 unicast via MP attributes (only when the IXP runs an IRR6).
  if (config_.irr6 != nullptr) {
    std::vector<net::Prefix6> touched6;
    if (update.attrs.mp_unreach_ipv6) {
      for (const auto& prefix : update.attrs.mp_unreach_ipv6->withdrawn) {
        const auto existing = rib6_.routes_for(prefix);
        const bool was_blackhole =
            std::any_of(existing.begin(), existing.end(), [&](const bgp::Route6& r) {
              return r.peer == peer && r.attrs.has_community(bgp::kBlackhole);
            });
        if (rib6_.withdraw(prefix, peer)) {
          touched6.push_back(prefix);
          if (was_blackhole) {
            events6_.push_back(
                BlackholeEvent6{queue_.now().count(), from.asn, prefix, true});
          }
        }
      }
    }
    if (update.attrs.mp_reach_ipv6) {
      for (const auto& prefix : update.attrs.mp_reach_ipv6->nlri) {
        if (!import_accept6(from, prefix, update.attrs)) continue;
        bgp::Route6 route;
        route.prefix = prefix;
        route.peer = peer;
        route.attrs = update.attrs;
        if (rib6_.insert(route)) {
          touched6.push_back(prefix);
          if (update.attrs.has_community(bgp::kBlackhole)) {
            events6_.push_back(
                BlackholeEvent6{queue_.now().count(), from.asn, prefix, false});
          }
        }
      }
    }
    for (const auto& prefix : touched6) reexport6(prefix);
  }
}

bool RouteServer::import_accept(const MemberPeer& from, const bgp::Nlri4& nlri,
                                const bgp::PathAttributes& attrs) {
  const net::Prefix4& prefix = nlri.prefix;
  // The announcing member must originate the path (no route-server leaks).
  const auto origin = attrs.origin_asn();
  if (!origin || *origin != from.asn) {
    ++rejects_.origin_mismatch;
    return false;
  }
  if (config_.bogons != nullptr && config_.bogons->is_bogon(prefix)) {
    ++rejects_.bogon;
    return false;
  }
  if (!config_.irr->authorized(prefix, from.asn)) {
    ++rejects_.irr_unauthorized;
    return false;
  }
  if (config_.rpki != nullptr &&
      config_.rpki->validate(prefix, from.asn) == RpkiState::kInvalid) {
    ++rejects_.rpki_invalid;
    return false;
  }
  // More-specifics than /24 are only meaningful as blackholing requests
  // (standard or Advanced, the latter marked by IXP extended communities).
  if (prefix.length() > 24) {
    const bool advanced =
        std::any_of(attrs.extended_communities.begin(), attrs.extended_communities.end(),
                    [this](const bgp::ExtendedCommunity& ec) {
                      return ec.as_number() == static_cast<std::uint16_t>(config_.asn);
                    }) ||
        std::any_of(attrs.large_communities.begin(), attrs.large_communities.end(),
                    [this](const bgp::LargeCommunity& lc) {
                      return lc.global_admin == config_.asn;
                    });
    if (!attrs.has_community(bgp::kBlackhole) && !advanced) {
      ++rejects_.too_specific;
      return false;
    }
  }
  return true;
}

void RouteServer::log_blackhole_event(const MemberPeer& from, const net::Prefix4& prefix,
                                      const bgp::PathAttributes& attrs, bool withdrawn) {
  BlackholeEvent ev;
  ev.time_s = queue_.now().count();
  ev.member = from.asn;
  ev.prefix = prefix;
  ev.withdrawn = withdrawn;
  for (const auto& c : attrs.communities) {
    if (c == announce_to_none()) {
      ev.announce_to_none = true;
    } else if (c.asn() == 0 && c.value() != 0 && c.value() != config_.asn) {
      ++ev.excluded_peers;
    } else if (c.asn() == static_cast<std::uint16_t>(config_.asn) && c.value() != 0 &&
               c != bgp::kBlackhole) {
      ++ev.included_peers;
    }
  }
  events_.push_back(ev);
}

void RouteServer::reexport(const net::Prefix4& prefix) {
  // One RIB walk and one export-attribute computation per distinct best path,
  // shared across the whole member fan-out: O(paths + members) per prefix
  // instead of O(paths * members) at L-IXP scale.
  std::vector<PathRef> paths;
  rib_.visit_prefix(prefix, [&](const bgp::RouteView& r) {
    paths.push_back(PathRef{r.peer, r.path_id, &r.attrs});
  });
  ExportCache cache;
  for (std::size_t i = 0; i < members_.size(); ++i) reexport_to(i, prefix, paths, cache);
}

void RouteServer::reexport_to(std::size_t member_index, const net::Prefix4& prefix) {
  std::vector<PathRef> paths;
  rib_.visit_prefix(prefix, [&](const bgp::RouteView& r) {
    paths.push_back(PathRef{r.peer, r.path_id, &r.attrs});
  });
  ExportCache cache;
  reexport_to(member_index, prefix, paths, cache);
}

void RouteServer::reexport_to(std::size_t member_index, const net::Prefix4& prefix,
                              const std::vector<PathRef>& paths, ExportCache& cache) {
  MemberPeer& target = members_[member_index];
  const bgp::PeerId target_peer = static_cast<bgp::PeerId>(member_index + 1);

  // Best eligible route for this peer (not its own, scope allows).
  struct Cand {
    const bgp::PathAttributes& attrs;
    bgp::PeerId peer;
    bgp::PathId path_id;
  };
  const PathRef* best = nullptr;
  for (const auto& r : paths) {
    if (r.peer == target_peer) continue;
    if (!eligible(*r.attrs, target.asn)) continue;
    if (best == nullptr || bgp::BetterPath(Cand{*r.attrs, r.peer, r.path_id},
                                           Cand{*best->attrs, best->peer, best->path_id})) {
      best = &r;
    }
  }

  const auto exported = target.exported.find(prefix);
  if (best == nullptr) {
    if (exported != target.exported.end()) {
      target.exported.erase(exported);
      bgp::UpdateMessage update;
      update.withdrawn.push_back(bgp::Nlri4{0, prefix});
      target.session->announce(std::move(update));
    }
    return;
  }
  auto [cached, fresh] = cache.try_emplace({best->peer, best->path_id});
  if (fresh) cached->second = bgp::Intern(member_export_attrs(*best->attrs));
  const std::shared_ptr<const bgp::PathAttributes>& out = cached->second;
  // Interned pointers: equal <=> the exported attributes are unchanged.
  if (exported != target.exported.end() && exported->second == out) return;
  target.exported[prefix] = out;
  bgp::UpdateMessage update;
  update.attrs = *out;
  update.announced.push_back(bgp::Nlri4{0, prefix});
  target.session->announce(std::move(update));
}

void RouteServer::on_member_refresh(bgp::PeerId peer, const bgp::RouteRefreshMessage& refresh) {
  MemberPeer& target = members_[peer - 1];
  if (refresh.afi == bgp::kAfiIPv4) {
    // Forget what was exported so everything eligible is re-sent, letting the
    // member's (possibly changed) import policy re-evaluate each route.
    target.exported.clear();
    for (const auto& prefix : rib_.prefixes()) reexport_to(peer - 1, prefix);
  } else if (refresh.afi == bgp::kAfiIPv6) {
    target.exported6.clear();
    for (const auto& prefix : rib6_.prefixes()) reexport_to6(peer - 1, prefix);
  }
}

bool RouteServer::eligible(const bgp::PathAttributes& attrs, bgp::Asn target) const {
  if (attrs.has_community(bgp::kNoAdvertise)) return false;
  if (attrs.has_community(announce_to_none())) {
    return attrs.has_community(include_peer(target));
  }
  return !attrs.has_community(exclude_peer(target));
}

bgp::PathAttributes RouteServer::member_export_attrs(const bgp::PathAttributes& attrs) const {
  bgp::PathAttributes out = attrs;
  // Strip scope-control communities: they are instructions to the route
  // server, not information for peers.
  std::erase_if(out.communities, [this](bgp::Community c) {
    if (c == bgp::kBlackhole) return false;
    return c.asn() == 0 || c.asn() == static_cast<std::uint16_t>(config_.asn);
  });
  // Strip Stellar signaling communities (IXP namespace, both encodings).
  std::erase_if(out.extended_communities, [this](const bgp::ExtendedCommunity& ec) {
    return ec.as_number() == static_cast<std::uint16_t>(config_.asn);
  });
  std::erase_if(out.large_communities, [this](const bgp::LargeCommunity& lc) {
    return lc.global_admin == config_.asn;
  });
  // Classic RTBH: rewrite the next-hop so accepting members route the prefix
  // into the IXP's null interface.
  if (attrs.has_community(bgp::kBlackhole)) {
    out.next_hop = config_.blackhole_next_hop;
    out.add_community(bgp::kNoExport);
  }
  return out;
}

bool RouteServer::import_accept6(const MemberPeer& from, const net::Prefix6& prefix,
                                 const bgp::PathAttributes& attrs) {
  const auto origin = attrs.origin_asn();
  if (!origin || *origin != from.asn) {
    ++rejects_.origin_mismatch;
    return false;
  }
  if (config_.bogons6 != nullptr && config_.bogons6->is_bogon(prefix)) {
    ++rejects_.bogon;
    return false;
  }
  if (config_.irr6 == nullptr || !config_.irr6->authorized(prefix, from.asn)) {
    ++rejects_.irr_unauthorized;
    return false;
  }
  // More-specifics than /48 are only meaningful as blackholing requests.
  if (prefix.length() > 48) {
    const bool advanced =
        std::any_of(attrs.extended_communities.begin(), attrs.extended_communities.end(),
                    [this](const bgp::ExtendedCommunity& ec) {
                      return ec.as_number() == static_cast<std::uint16_t>(config_.asn);
                    }) ||
        std::any_of(attrs.large_communities.begin(), attrs.large_communities.end(),
                    [this](const bgp::LargeCommunity& lc) {
                      return lc.global_admin == config_.asn;
                    });
    if (!attrs.has_community(bgp::kBlackhole) && !advanced) {
      ++rejects_.too_specific;
      return false;
    }
  }
  return true;
}

void RouteServer::reexport6(const net::Prefix6& prefix) {
  std::vector<PathRef> paths;
  rib6_.visit_prefix(prefix, [&](const bgp::RouteView6& r) {
    paths.push_back(PathRef{r.peer, r.path_id, &r.attrs});
  });
  ExportCache cache;
  for (std::size_t i = 0; i < members_.size(); ++i) reexport_to6(i, prefix, paths, cache);
}

void RouteServer::reexport_to6(std::size_t member_index, const net::Prefix6& prefix) {
  std::vector<PathRef> paths;
  rib6_.visit_prefix(prefix, [&](const bgp::RouteView6& r) {
    paths.push_back(PathRef{r.peer, r.path_id, &r.attrs});
  });
  ExportCache cache;
  reexport_to6(member_index, prefix, paths, cache);
}

void RouteServer::reexport_to6(std::size_t member_index, const net::Prefix6& prefix,
                               const std::vector<PathRef>& paths, ExportCache& cache) {
  MemberPeer& target = members_[member_index];
  const bgp::PeerId target_peer = static_cast<bgp::PeerId>(member_index + 1);

  struct Cand {
    const bgp::PathAttributes& attrs;
    bgp::PeerId peer;
    bgp::PathId path_id;
  };
  const PathRef* best = nullptr;
  for (const auto& r : paths) {
    if (r.peer == target_peer) continue;
    if (!eligible(*r.attrs, target.asn)) continue;
    if (best == nullptr || bgp::BetterPath(Cand{*r.attrs, r.peer, r.path_id},
                                           Cand{*best->attrs, best->peer, best->path_id})) {
      best = &r;
    }
  }

  const auto exported = target.exported6.find(prefix);
  if (best == nullptr) {
    if (exported != target.exported6.end()) {
      target.exported6.erase(exported);
      bgp::UpdateMessage update;
      bgp::MpUnreachIPv6 unreach;
      unreach.withdrawn.push_back(prefix);
      update.attrs.mp_unreach_ipv6 = std::move(unreach);
      target.session->announce(std::move(update));
    }
    return;
  }
  // The export attributes depend only on the best path (the prefix in the
  // MP_REACH NLRI is fixed within one re-export), so the cache key holds.
  auto [cached, fresh] = cache.try_emplace({best->peer, best->path_id});
  if (fresh) cached->second = bgp::Intern(member_export_attrs6(*best->attrs, prefix));
  const std::shared_ptr<const bgp::PathAttributes>& out = cached->second;
  if (exported != target.exported6.end() && exported->second == out) return;
  target.exported6[prefix] = out;
  bgp::UpdateMessage update;
  update.attrs = *out;
  target.session->announce(std::move(update));
}

bgp::PathAttributes RouteServer::member_export_attrs6(const bgp::PathAttributes& attrs,
                                                      const net::Prefix6& prefix) const {
  bgp::PathAttributes out = member_export_attrs(attrs);
  // member_export_attrs rewrote the (unused) v4 next-hop; the v6 route's
  // actual forwarding state lives in MP_REACH.
  out.next_hop.reset();
  out.mp_unreach_ipv6.reset();
  bgp::MpReachIPv6 reach;
  reach.next_hop = attrs.has_community(bgp::kBlackhole)
                       ? config_.blackhole_next_hop6
                       : attrs.mp_reach_ipv6 ? attrs.mp_reach_ipv6->next_hop
                                             : net::IPv6Address();
  reach.nlri = {prefix};
  out.mp_reach_ipv6 = std::move(reach);
  return out;
}

void RouteServer::controller_announce(const bgp::Route& route) {
  if (!controller_session_) return;
  // Signal routes get a trace mark at the point the route server relays them
  // to the controller over the ADD-PATH iBGP session. (Replays on resync
  // re-stamp the same stage; breakdown keeps the first episode.)
  if (!route.attrs.extended_communities.empty() || !route.attrs.large_communities.empty()) {
    obs::tracer().mark(route.prefix.str(), "route_server_accept", queue_.now().count());
  }
  bgp::UpdateMessage update;
  update.attrs = route.attrs;
  update.announced.push_back(
      bgp::Nlri4{route.path_id != 0 ? route.path_id : ControllerPathId(route.peer),
                 route.prefix});
  controller_session_->announce(std::move(update));
}

void RouteServer::controller_withdraw(const net::Prefix4& prefix, bgp::PeerId peer) {
  if (!controller_session_) return;
  bgp::UpdateMessage update;
  update.withdrawn.push_back(bgp::Nlri4{ControllerPathId(peer), prefix});
  controller_session_->announce(std::move(update));
}

}  // namespace stellar::ixp
