// IXP member model: the descriptor the IXP registers (ASN, port, address
// space, RTBH policy) plus the member-side BGP router that peers with the
// route server.
//
// The router's import behaviour encodes the paper's central RTBH failure
// mode (§2.4): ~70% of members do not honor blackhole announcements, mostly
// because their default configuration rejects prefixes more specific than
// /24 — honoring a /32 RTBH route requires an explicit exception.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bgp/reconnect.hpp"
#include "bgp/rib.hpp"
#include "bgp/session.hpp"
#include "filter/tcam.hpp"
#include "net/ip.hpp"
#include "net/mac.hpp"
#include "sim/event_queue.hpp"

namespace stellar::ixp {

struct MemberPolicy {
  /// Member filters out routes more specific than /24 (IPv4) or /48 (IPv6)
  /// — the default router config. Blackhole host routes are rejected by
  /// such members.
  bool accepts_more_specifics = false;
  /// Member acts on the BLACKHOLE community by accepting the rewritten
  /// next-hop (only effective if more-specifics are accepted too).
  bool participates_in_rtbh = true;

  /// A member honors RTBH only if both conditions hold.
  [[nodiscard]] bool honors_rtbh() const {
    return accepts_more_specifics && participates_in_rtbh;
  }
};

struct MemberInfo {
  bgp::Asn asn = 0;
  std::string name;
  filter::PortId port = 0;
  double port_capacity_mbps = 10'000.0;
  net::MacAddress mac;
  net::IPv4Address router_ip;      ///< Peering-LAN address (BGP next-hop).
  net::Prefix4 address_space;      ///< The prefix this member originates.
  std::optional<net::Prefix6> address_space6;  ///< Optional IPv6 allocation.
  MemberPolicy policy;
};

/// The member's border router facing the IXP: one eBGP session to the route
/// server, a received-routes RIB, and the blackhole FIB consulted by the
/// fabric at ingress.
class MemberRouter {
 public:
  MemberRouter(sim::EventQueue& queue, MemberInfo info, net::IPv4Address blackhole_next_hop,
               net::IPv6Address blackhole_next_hop6 = net::IPv6Address());

  /// Attaches the transport to the route server and starts the session.
  /// Any previous session is stopped first.
  void connect(std::shared_ptr<bgp::Endpoint> transport);

  /// Self-healing connect: dials through `factory` (typically another
  /// RouteServer::accept_member call), re-dials with backoff + flap damping
  /// after unexpected session loss, and on every re-establishment requests a
  /// ROUTE-REFRESH and replays this router's own announcements — so a member
  /// that flaps converges back to its pre-failure signaling state without
  /// operator action. Announcements made through announce()/announce6() are
  /// replayed; raw session()->announce() traffic is not tracked.
  void connect_resilient(bgp::ReconnectingSession::TransportFactory factory,
                         bgp::ReconnectPolicy policy);

  /// Announces a prefix to the route server with optional communities.
  void announce(const net::Prefix4& prefix, std::vector<bgp::Community> communities = {},
                std::vector<bgp::ExtendedCommunity> extended = {});
  void withdraw(const net::Prefix4& prefix);

  /// IPv6 equivalents, carried in MP_REACH/MP_UNREACH (RFC 4760).
  void announce6(const net::Prefix6& prefix, std::vector<bgp::Community> communities = {},
                 std::vector<bgp::ExtendedCommunity> extended = {});
  void withdraw6(const net::Prefix6& prefix);

  /// Changes the member's import policy at runtime — the §2.4 remediation
  /// story: an operator fixes the config that filtered /32 blackholes. Sends
  /// a ROUTE-REFRESH so previously rejected routes are re-advertised and
  /// re-evaluated; on tightening, now-forbidden routes are dropped locally.
  void update_policy(MemberPolicy policy);

  /// Ingress check used by the fabric: does this member's router currently
  /// send traffic for `dst` into the blackhole next-hop?
  [[nodiscard]] bool blackholes(net::IPv4Address dst) const;
  [[nodiscard]] bool blackholes6(const net::IPv6Address& dst) const;

  [[nodiscard]] const MemberInfo& info() const { return info_; }
  [[nodiscard]] const bgp::Rib& rib() const { return rib_; }
  [[nodiscard]] const bgp::Rib6& rib6() const { return rib6_; }
  [[nodiscard]] bgp::Session* session() {
    return reconnector_ ? reconnector_->session() : session_.get();
  }
  /// Non-null after connect_resilient(): the recovery state machine.
  [[nodiscard]] bgp::ReconnectingSession* reconnector() { return reconnector_.get(); }
  [[nodiscard]] const std::set<net::Prefix4>& blackholed_prefixes() const { return blackholed_; }
  [[nodiscard]] const std::set<net::Prefix6>& blackholed6_prefixes() const {
    return blackholed6_;
  }
  [[nodiscard]] std::uint64_t rejected_more_specifics() const { return rejected_more_specifics_; }

 private:
  void on_update(const bgp::UpdateMessage& update);
  [[nodiscard]] bgp::Session* active_session();
  void teardown_session();
  /// Re-announces everything in announced_/announced6_ (post-reconnect).
  void replay_announcements();
  void send_announce(const net::Prefix4& prefix, std::vector<bgp::Community> communities,
                     std::vector<bgp::ExtendedCommunity> extended);
  void send_announce6(const net::Prefix6& prefix, std::vector<bgp::Community> communities,
                      std::vector<bgp::ExtendedCommunity> extended);

  /// What this router has told the route server (for replay on reconnect).
  struct AnnouncedAttrs {
    std::vector<bgp::Community> communities;
    std::vector<bgp::ExtendedCommunity> extended;
  };

  sim::EventQueue& queue_;
  MemberInfo info_;
  net::IPv4Address blackhole_next_hop_;
  net::IPv6Address blackhole_next_hop6_;
  std::unique_ptr<bgp::Session> session_;
  std::unique_ptr<bgp::ReconnectingSession> reconnector_;
  std::map<net::Prefix4, AnnouncedAttrs> announced_;
  std::map<net::Prefix6, AnnouncedAttrs> announced6_;
  bgp::Rib rib_;                       ///< Accepted routes from the route server.
  bgp::Rib6 rib6_;
  std::set<net::Prefix4> blackholed_;  ///< Prefixes routed into the blackhole.
  std::set<net::Prefix6> blackholed6_;
  std::uint64_t rejected_more_specifics_ = 0;
};

}  // namespace stellar::ixp
