#include "ixp/looking_glass.hpp"

#include <cstdio>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stellar::ixp {

std::vector<std::string> LookingGlass::show_route(const net::Prefix4& prefix) const {
  std::vector<std::string> out;
  for (const auto& route : server_.adj_rib_in().routes_for(prefix)) {
    std::ostringstream line;
    line << prefix.str() << " via AS" << server_.member_asn_of_peer(route.peer);
    if (route.attrs.next_hop) line << " next-hop " << route.attrs.next_hop->str();
    if (!route.attrs.communities.empty()) {
      line << " communities";
      for (const auto& c : route.attrs.communities) line << ' ' << c.str();
    }
    if (!route.attrs.extended_communities.empty()) {
      line << " extended";
      for (const auto& ec : route.attrs.extended_communities) line << ' ' << ec.str();
    }
    out.push_back(line.str());
  }
  return out;
}

std::vector<std::string> LookingGlass::show_route6(const net::Prefix6& prefix) const {
  std::vector<std::string> out;
  for (const auto& route : server_.adj_rib_in6().routes_for(prefix)) {
    std::ostringstream line;
    line << prefix.str() << " via AS" << server_.member_asn_of_peer(route.peer);
    if (route.attrs.mp_reach_ipv6) {
      line << " next-hop " << route.attrs.mp_reach_ipv6->next_hop.str();
    }
    if (!route.attrs.communities.empty()) {
      line << " communities";
      for (const auto& c : route.attrs.communities) line << ' ' << c.str();
    }
    out.push_back(line.str());
  }
  return out;
}

std::vector<std::string> LookingGlass::show_rib_summary() const {
  std::map<net::Prefix4, std::size_t> paths_per_prefix;
  server_.adj_rib_in().for_each(
      [&](const bgp::Route& r) { ++paths_per_prefix[r.prefix]; });
  std::vector<std::string> out;
  for (const auto& [prefix, count] : paths_per_prefix) {
    out.push_back(prefix.str() + " paths=" + std::to_string(count));
  }
  return out;
}

std::string LookingGlass::show_status() const {
  std::ostringstream out;
  out << "members=" << server_.member_count()
      << " established=" << server_.established_member_sessions()
      << " routes=" << server_.adj_rib_in().size()
      << " routes6=" << server_.adj_rib_in6().size()
      << " rejects{bogon=" << server_.rejects().bogon
      << ", irr=" << server_.rejects().irr_unauthorized
      << ", rpki=" << server_.rejects().rpki_invalid
      << ", too_specific=" << server_.rejects().too_specific
      << ", origin=" << server_.rejects().origin_mismatch << "}";
  return out.str();
}

std::string LookingGlass::show_metrics() const {
  return obs::registry().expose_text();
}

std::vector<std::string> LookingGlass::show_signal_path(const net::Prefix4& prefix) const {
  std::vector<std::string> out;
  for (const auto& stage : obs::tracer().breakdown(prefix.str())) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-20s t=%.6f +%.6f", stage.stage.c_str(), stage.at_s,
                  stage.delta_s);
    out.emplace_back(line);
  }
  return out;
}

}  // namespace stellar::ixp
