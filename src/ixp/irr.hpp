// Routing hygiene databases consulted by the route server's import policy
// (paper §4.3: "each member can only announce prefixes that are not in
// conflict with Internet Route Registry databases (IRRs), BOGONS, and RPKI
// validation").
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "bgp/types.hpp"
#include "net/ip.hpp"

namespace stellar::ixp {

/// Internet Routing Registry: route objects authorizing an origin ASN to
/// announce a prefix. A covering route object authorizes all more-specifics
/// of its prefix for the same origin (this is how /32 blackhole routes out of
/// a registered /24..../16 pass validation). Generic over the address family
/// (route vs route6 objects).
template <typename PrefixT>
class BasicIrrDatabase {
 public:
  void add_route_object(const PrefixT& prefix, bgp::Asn origin) {
    objects_.insert({prefix, origin});
  }
  void remove_route_object(const PrefixT& prefix, bgp::Asn origin) {
    objects_.erase({prefix, origin});
  }

  /// True if some route object covers `prefix` with origin `asn`.
  [[nodiscard]] bool authorized(const PrefixT& prefix, bgp::Asn asn) const {
    for (const auto& [object_prefix, object_origin] : objects_) {
      if (object_origin == asn && object_prefix.contains(prefix)) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return objects_.size(); }

 private:
  std::set<std::pair<PrefixT, bgp::Asn>> objects_;
};

using IrrDatabase = BasicIrrDatabase<net::Prefix4>;
using Irr6Database = BasicIrrDatabase<net::Prefix6>;

/// RPKI Route Origin Authorization validation (RFC 6811 semantics).
enum class RpkiState : std::uint8_t { kValid, kInvalid, kNotFound };

class RpkiValidator {
 public:
  struct Roa {
    net::Prefix4 prefix;
    std::uint8_t max_length = 32;
    bgp::Asn asn = 0;
  };

  void add_roa(Roa roa) { roas_.push_back(roa); }

  /// RFC 6811: Valid if a covering ROA matches origin and maxLength;
  /// Invalid if covering ROAs exist but none matches; NotFound otherwise.
  [[nodiscard]] RpkiState validate(const net::Prefix4& prefix, bgp::Asn origin) const;

  [[nodiscard]] std::size_t size() const { return roas_.size(); }

 private:
  std::vector<Roa> roas_;
};

/// Bogon prefixes that must never appear in inter-domain routing.
template <typename PrefixT>
class BasicBogonList {
 public:
  void add(const PrefixT& prefix) { bogons_.push_back(prefix); }

  /// True if the prefix overlaps any bogon (equal, more- or less-specific).
  [[nodiscard]] bool is_bogon(const PrefixT& prefix) const {
    for (const auto& bogon : bogons_) {
      if (bogon.contains(prefix) || prefix.contains(bogon)) return true;
    }
    return false;
  }

 private:
  std::vector<PrefixT> bogons_;
};

class BogonList : public BasicBogonList<net::Prefix4> {
 public:
  /// Loads the standard full-bogon set (RFC 1122/1918/3927/5737/6598, loopback,
  /// multicast, reserved).
  static BogonList Standard();
};

class Bogon6List : public BasicBogonList<net::Prefix6> {
 public:
  /// Standard IPv6 bogons (loopback, link/site-local, documentation,
  /// multicast, unallocated ::/3 edges). The RFC 6666 discard prefix
  /// 100::/64 is deliberately absent: it is the blackhole next-hop.
  static Bogon6List Standard();
};

}  // namespace stellar::ixp
