#include "ixp/ixp.hpp"

#include <stdexcept>

namespace stellar::ixp {

namespace {

RouteServer::Config MakeRouteServerConfig(const Ixp::Config& config, const IrrDatabase& irr,
                                          const Irr6Database& irr6, const RpkiValidator& rpki,
                                          const BogonList& bogons, const Bogon6List& bogons6) {
  RouteServer::Config rs;
  rs.asn = config.asn;
  rs.blackhole_next_hop = config.blackhole_next_hop;
  rs.irr = &irr;
  rs.irr6 = &irr6;
  rs.rpki = config.enable_rpki ? &rpki : nullptr;
  rs.bogons = &bogons;
  rs.bogons6 = &bogons6;
  return rs;
}

}  // namespace

Ixp::Ixp(sim::EventQueue& queue, Config config)
    : queue_(queue),
      config_(config),
      edge_router_("er1", config.tcam, config.cpu),
      fabric_(edge_router_, config.filter_location),
      route_server_(queue,
                    MakeRouteServerConfig(config, irr_, irr6_, rpki_, bogons_, bogons6_)) {
  fabric_.set_ingress_blackhole_fn(
      [this](const net::MacAddress& mac, net::IPv4Address dst) {
        const auto it = by_mac_.find(mac);
        return it != by_mac_.end() && it->second->blackholes(dst);
      });
}

MemberRouter& Ixp::add_member(const MemberSpec& spec) {
  if (by_asn_.contains(spec.asn)) {
    throw std::invalid_argument("duplicate member ASN " + std::to_string(spec.asn));
  }
  MemberInfo info;
  info.asn = spec.asn;
  info.name = spec.name.empty() ? "AS" + std::to_string(spec.asn) : spec.name;
  info.port = static_cast<filter::PortId>(spec.asn);
  info.port_capacity_mbps = spec.port_capacity_mbps;
  info.mac = net::MacAddress::ForRouter(spec.asn);
  const auto index = static_cast<std::uint32_t>(members_.size());
  info.router_ip = net::IPv4Address(10, 99,
                                    static_cast<std::uint8_t>(1 + index / 250),
                                    static_cast<std::uint8_t>(1 + index % 250));
  info.address_space = spec.address_space;
  info.address_space6 = spec.address_space6;
  info.policy = spec.policy;

  irr_.add_route_object(spec.address_space, spec.asn);
  if (spec.address_space6) irr6_.add_route_object(*spec.address_space6, spec.asn);
  rpki_.add_roa({spec.address_space, 32, spec.asn});
  edge_router_.add_port(info.port, spec.port_capacity_mbps);
  fabric_.register_owner(spec.address_space, info.port);

  auto router = std::make_unique<MemberRouter>(queue_, info, config_.blackhole_next_hop,
                                               route_server_.config().blackhole_next_hop6);
  router->connect(route_server_.accept_member(spec.asn));
  router->announce(spec.address_space);
  if (spec.address_space6) router->announce6(*spec.address_space6);
  MemberRouter& ref = *router;
  by_asn_[spec.asn] = &ref;
  by_mac_[info.mac] = &ref;
  members_.push_back(std::move(router));
  return ref;
}

MemberRouter* Ixp::member(bgp::Asn asn) {
  const auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? nullptr : it->second;
}

void Ixp::settle(double seconds) { queue_.run_until(queue_.now() + sim::Seconds(seconds)); }

std::vector<traffic::SourceMember> Ixp::source_members(bgp::Asn exclude) const {
  std::vector<traffic::SourceMember> out;
  out.reserve(members_.size());
  for (const auto& m : members_) {
    if (m->info().asn == exclude) continue;
    out.push_back(traffic::SourceMember{m->info().mac, m->info().address_space});
  }
  return out;
}

std::unique_ptr<Ixp> MakeLargeIxp(sim::EventQueue& queue, const LargeIxpParams& params) {
  auto ixp = std::make_unique<Ixp>(queue, params.config);
  util::Rng rng(params.seed);

  for (int i = 0; i < params.member_count; ++i) {
    MemberSpec spec;
    // 16-bit ASNs keep scope-control communities expressible; stay below the
    // IXP's own ASN (64500).
    spec.asn = static_cast<bgp::Asn>(60'001 + i);
    if (spec.asn >= 64'499) {
      throw std::invalid_argument("MakeLargeIxp: too many members for 16-bit ASN plan");
    }
    // /20 slices out of 60.0.0.0/8: disjoint, public, non-bogon.
    spec.address_space = net::Prefix4(
        net::IPv4Address((60u << 24) | (static_cast<std::uint32_t>(i) << 12)), 20);

    // Heavy-tailed port capacities: most members 1-10G, a few hyper-giants.
    const double draw = rng.uniform();
    spec.port_capacity_mbps = draw < 0.35 ? 1'000.0
                              : draw < 0.80 ? 10'000.0
                              : draw < 0.98 ? 100'000.0
                                            : 400'000.0;

    spec.policy.accepts_more_specifics = rng.chance(params.rtbh_honor_fraction);
    spec.policy.participates_in_rtbh =
        spec.policy.accepts_more_specifics || rng.chance(params.participate_fraction);
    ixp->add_member(spec);
  }
  // Let sessions establish and initial announcements propagate.
  ixp->settle(120.0);
  return ixp;
}

}  // namespace stellar::ixp
