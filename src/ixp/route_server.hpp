// IXP route server (paper §2.1, §4.3): multilateral peering hub, import
// hygiene (IRR / RPKI / bogons), scope-control ("action") communities,
// classic RTBH blackhole handling with next-hop rewriting, and the ADD-PATH
// iBGP southbound session feeding the Stellar blackholing controller.
//
// Key property inherited by Stellar (paper §4.3): "as opposed to RTBH, the
// route server does not reflect [Advanced Blackholing] signals back to the
// other members" — signals addressed to the IXP itself (announce-to-none)
// still reach the controller session, which receives *every* accepted path
// with a distinct ADD-PATH path-id.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "bgp/session.hpp"
#include "ixp/irr.hpp"
#include "net/ip.hpp"
#include "sim/event_queue.hpp"

namespace stellar::ixp {

class RouteServer {
 public:
  struct Config {
    bgp::Asn asn = 64500;  ///< The IXP's ASN (route server + community namespace).
    net::IPv4Address router_id{net::IPv4Address(10, 99, 0, 1)};
    net::IPv4Address blackhole_next_hop{net::IPv4Address(10, 99, 0, 66)};
    /// RFC 6666 discard-only prefix: 100::1.
    net::IPv6Address blackhole_next_hop6{DiscardOnlyV6()};
    const IrrDatabase* irr = nullptr;       ///< Required: prefix-ownership checks.
    const Irr6Database* irr6 = nullptr;     ///< Optional: enables IPv6 announcements.
    const RpkiValidator* rpki = nullptr;    ///< Optional: RPKI invalid => reject.
    const BogonList* bogons = nullptr;      ///< Optional: bogon announcements => reject.
    const Bogon6List* bogons6 = nullptr;

    /// 100::1 inside the RFC 6666 discard-only block.
    static net::IPv6Address DiscardOnlyV6() {
      net::IPv6Address::Bytes b{};
      b[0] = 0x01;
      b[15] = 0x01;
      return net::IPv6Address(b);
    }
  };

  struct RejectStats {
    std::uint64_t bogon = 0;
    std::uint64_t irr_unauthorized = 0;
    std::uint64_t rpki_invalid = 0;
    std::uint64_t too_specific = 0;      ///< > /24 without a blackhole community.
    std::uint64_t origin_mismatch = 0;   ///< AS path origin != announcing member.

    [[nodiscard]] std::uint64_t total() const {
      return bogon + irr_unauthorized + rpki_invalid + too_specific + origin_mismatch;
    }
  };

  /// One accepted blackhole announcement, logged for the Fig. 3b analysis of
  /// how members scope their RTBH requests.
  struct BlackholeEvent {
    double time_s = 0.0;
    bgp::Asn member = 0;
    net::Prefix4 prefix;
    int excluded_peers = 0;   ///< "All-k": number of (0:peer) exclusions.
    int included_peers = 0;   ///< Explicit (ixp:peer) inclusions.
    bool announce_to_none = false;  ///< (0:ixp_asn) present.
    bool withdrawn = false;
  };

  /// IPv6 blackholing events (paper footnote 4: <1% of blackholing traffic,
  /// but the mechanism is AFI-agnostic).
  struct BlackholeEvent6 {
    double time_s = 0.0;
    bgp::Asn member = 0;
    net::Prefix6 prefix;
    bool withdrawn = false;
  };

  RouteServer(sim::EventQueue& queue, Config config);

  /// Creates the server side of a member eBGP session and returns the
  /// transport endpoint the member router should connect to.
  std::shared_ptr<bgp::Endpoint> accept_member(bgp::Asn member_asn);

  /// Creates the southbound iBGP+ADD-PATH session and returns the endpoint
  /// for the blackholing controller. All currently accepted routes are
  /// queued for initial synchronization.
  std::shared_ptr<bgp::Endpoint> accept_controller();

  // -- Scope-control community helpers (IXP community namespace) ------------
  /// (0:peer) — do not announce to `peer`.
  [[nodiscard]] bgp::Community exclude_peer(bgp::Asn peer) const;
  /// (ixp:peer) — announce to `peer` (with announce-to-none, an allowlist).
  [[nodiscard]] bgp::Community include_peer(bgp::Asn peer) const;
  /// (0:ixp) — announce to no member (the Stellar-style "IXP only" scope).
  [[nodiscard]] bgp::Community announce_to_none() const;

  // -- Introspection ----------------------------------------------------------
  [[nodiscard]] const bgp::Rib& adj_rib_in() const { return rib_; }
  [[nodiscard]] const bgp::Rib6& adj_rib_in6() const { return rib6_; }
  [[nodiscard]] const RejectStats& rejects() const { return rejects_; }
  [[nodiscard]] const std::vector<BlackholeEvent>& blackhole_events() const { return events_; }
  [[nodiscard]] const std::vector<BlackholeEvent6>& blackhole_events6() const {
    return events6_;
  }
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] std::size_t established_member_sessions() const;
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] bgp::Asn member_asn_of_peer(bgp::PeerId peer) const;

 private:
  struct MemberPeer {
    bgp::Asn asn = 0;
    std::unique_ptr<bgp::Session> session;
    /// Last attributes exported to this peer, per prefix (empty = withdrawn).
    /// Interned: all ~N members exporting the same best path share one
    /// allocation, and the did-it-change check is a pointer comparison.
    std::map<net::Prefix4, std::shared_ptr<const bgp::PathAttributes>> exported;
    std::map<net::Prefix6, std::shared_ptr<const bgp::PathAttributes>> exported6;
  };

  /// Borrowed view of one RIB path, shared across the per-member export loop
  /// so the RIB is walked once per re-export instead of once per member.
  struct PathRef {
    bgp::PeerId peer = 0;
    bgp::PathId path_id = 0;
    const bgp::PathAttributes* attrs = nullptr;
  };
  /// (peer, path_id) -> interned export attributes, computed at most once per
  /// distinct best path within one re-export fan-out.
  using ExportCache =
      std::map<std::pair<bgp::PeerId, bgp::PathId>, std::shared_ptr<const bgp::PathAttributes>>;

  void on_member_update(bgp::PeerId peer, const bgp::UpdateMessage& update);
  /// Implicit withdraw on session failure: every route of the dead peer is
  /// removed and withdrawn from members and the controller.
  void on_member_session_closed(bgp::PeerId peer);
  [[nodiscard]] bool import_accept(const MemberPeer& from, const bgp::Nlri4& nlri,
                                   const bgp::PathAttributes& attrs);
  void log_blackhole_event(const MemberPeer& from, const net::Prefix4& prefix,
                           const bgp::PathAttributes& attrs, bool withdrawn);
  void reexport(const net::Prefix4& prefix);
  /// ROUTE-REFRESH from a member: clears the per-peer Adj-RIB-Out bookkeeping
  /// for the AFI and re-sends every eligible route.
  void on_member_refresh(bgp::PeerId peer, const bgp::RouteRefreshMessage& refresh);
  void reexport_to(std::size_t member_index, const net::Prefix4& prefix);
  void reexport_to(std::size_t member_index, const net::Prefix4& prefix,
                   const std::vector<PathRef>& paths, ExportCache& cache);
  void reexport_to6(std::size_t member_index, const net::Prefix6& prefix);
  void reexport_to6(std::size_t member_index, const net::Prefix6& prefix,
                    const std::vector<PathRef>& paths, ExportCache& cache);
  [[nodiscard]] bool import_accept6(const MemberPeer& from, const net::Prefix6& prefix,
                                    const bgp::PathAttributes& attrs);
  void reexport6(const net::Prefix6& prefix);
  /// True if a route with these attributes may be exported to `target`.
  [[nodiscard]] bool eligible(const bgp::PathAttributes& attrs, bgp::Asn target) const;
  /// Attributes as exported to members: scope communities stripped, blackhole
  /// next-hop rewritten, Stellar extended communities removed.
  [[nodiscard]] bgp::PathAttributes member_export_attrs(const bgp::PathAttributes& attrs) const;
  [[nodiscard]] bgp::PathAttributes member_export_attrs6(const bgp::PathAttributes& attrs,
                                                         const net::Prefix6& prefix) const;
  void controller_announce(const bgp::Route& route);
  void controller_withdraw(const net::Prefix4& prefix, bgp::PeerId peer);

  sim::EventQueue& queue_;
  Config config_;
  std::vector<MemberPeer> members_;  ///< PeerId = index + 1.
  bgp::Rib rib_;                     ///< All accepted member routes.
  bgp::Rib6 rib6_;
  std::unique_ptr<bgp::Session> controller_session_;
  RejectStats rejects_;
  std::vector<BlackholeEvent> events_;
  std::vector<BlackholeEvent6> events6_;
};

}  // namespace stellar::ixp
