#include "ixp/irr.hpp"

namespace stellar::ixp {

RpkiState RpkiValidator::validate(const net::Prefix4& prefix, bgp::Asn origin) const {
  bool covered = false;
  for (const auto& roa : roas_) {
    if (!roa.prefix.contains(prefix)) continue;
    covered = true;
    if (roa.asn == origin && prefix.length() <= roa.max_length) return RpkiState::kValid;
  }
  return covered ? RpkiState::kInvalid : RpkiState::kNotFound;
}

BogonList BogonList::Standard() {
  BogonList list;
  for (const char* text : {
           "0.0.0.0/8",        // "This" network (RFC 1122).
           "10.0.0.0/8",       // Private (RFC 1918).
           "100.64.0.0/10",    // CGN shared space (RFC 6598).
           "127.0.0.0/8",      // Loopback.
           "169.254.0.0/16",   // Link local (RFC 3927).
           "172.16.0.0/12",    // Private (RFC 1918).
           "192.0.0.0/24",     // IETF protocol assignments.
           "192.0.2.0/24",     // TEST-NET-1 (RFC 5737).
           "192.168.0.0/16",   // Private (RFC 1918).
           "198.18.0.0/15",    // Benchmarking (RFC 2544).
           "198.51.100.0/24",  // TEST-NET-2.
           "203.0.113.0/24",   // TEST-NET-3.
           "224.0.0.0/4",      // Multicast.
           "240.0.0.0/4",      // Reserved.
       }) {
    list.add(net::Prefix4::Parse(text).value());
  }
  return list;
}

Bogon6List Bogon6List::Standard() {
  Bogon6List list;
  for (const char* text : {
           "::/127",            // Unspecified + loopback.
           "::ffff:0:0/96",     // IPv4-mapped.
           "fe80::/10",         // Link local.
           "fc00::/7",          // Unique local.
           "2001:db8::/32",     // Documentation.
           "ff00::/8",          // Multicast.
           "3fff::/20",         // Documentation (RFC 9637).
       }) {
    list.add(net::Prefix6::Parse(text).value());
  }
  return list;
}

}  // namespace stellar::ixp
