// Table-1 comparison harness: runs the same attack scenario under every
// mitigation technique the paper compares — TSS, ACL filters, RTBH, Flowspec,
// Advanced Blackholing (Stellar) — and scores the table's dimensions from
// *measured* quantities where the paper uses qualitative marks.
//
// Canonical scenario: a member with a 1 Gbps IXP port runs a web service;
// an NTP amplification attack saturates the port; benign web traffic rides
// alongside. Mitigation is triggered mid-attack.
#pragma once

#include <string>
#include <vector>

namespace stellar::mitigation {

struct ComparisonConfig {
  int members = 80;
  double victim_port_mbps = 1'000.0;
  double benign_mbps = 400.0;
  double attack_peak_mbps = 1'000.0;
  /// Long enough to cover the slowest technique's onboarding (TSS: 1800 s
  /// subscription + redirection) plus a steady-state measurement window.
  double duration_s = 2640.0;
  double bin_s = 5.0;
  double attack_start_s = 60.0;
  double mitigation_trigger_s = 120.0;
  double rtbh_honor_fraction = 0.30;
  double flowspec_acceptance = 0.15;
  std::uint64_t seed = 7;
};

struct TechniqueMetrics {
  std::string name;

  // Measured in the post-mitigation steady-state window.
  double attack_delivered_pct = 0.0;  ///< % of offered attack reaching the victim.
  double benign_delivered_pct = 0.0;  ///< % of offered benign reaching the victim.
  double reaction_time_s = 0.0;  ///< Trigger -> technique's filters active (inf if never).
  double measured_cost = 0.0;         ///< Accumulated volume cost (TSS) or 0.

  // Structural properties of the technique.
  int signaling_messages = 0;   ///< Messages the victim must emit.
  int cooperating_parties = 0;  ///< Parties beyond victim+IXP that must act.
  bool telemetry = false;
  bool resource_sharing_required = false;
  double scalability_gbps = 0.0;   ///< Attack volume ceiling of the approach.
  double added_latency_ms = 0.0;   ///< Path stretch imposed on clean traffic.
};

[[nodiscard]] std::vector<TechniqueMetrics> RunComparison(const ComparisonConfig& config);

/// Renders both the measured table and a paper-style qualitative summary
/// (✓ / ✗ / • per dimension, thresholds documented in the implementation).
[[nodiscard]] std::string RenderComparisonTable(const std::vector<TechniqueMetrics>& rows);

}  // namespace stellar::mitigation
