#include "mitigation/rtbh.hpp"

namespace stellar::mitigation {

void TriggerRtbh(ixp::MemberRouter& victim, const net::Prefix4& prefix,
                 std::vector<bgp::Community> scope) {
  scope.push_back(bgp::kBlackhole);
  victim.announce(prefix, std::move(scope));
}

void WithdrawRtbh(ixp::MemberRouter& victim, const net::Prefix4& prefix) {
  victim.withdraw(prefix);
}

RtbhCompliance MeasureCompliance(const ixp::Ixp& ixp, const net::Prefix4& prefix,
                                 bgp::Asn victim_asn) {
  RtbhCompliance compliance;
  for (const auto& member : ixp.members()) {
    if (member->info().asn == victim_asn) continue;
    ++compliance.total;
    if (member->blackholes(prefix.address())) ++compliance.honoring;
  }
  return compliance;
}

}  // namespace stellar::mitigation
