// Classic Remotely Triggered Black Hole (RTBH) — the baseline Stellar
// improves on. The mechanics live in the IXP substrate (route server rewrites
// the next-hop, honoring members drop at ingress); this module provides the
// trigger/withdraw operations and the compliance measurements of §2.4.
#pragma once

#include <vector>

#include "ixp/ixp.hpp"

namespace stellar::mitigation {

/// Announces `prefix` tagged with the RFC 7999 BLACKHOLE community, asking
/// every route-server participant to drop traffic towards it. Optional scope
/// communities restrict the audience (Fig. 3b's "All-k" / targeted patterns).
void TriggerRtbh(ixp::MemberRouter& victim, const net::Prefix4& prefix,
                 std::vector<bgp::Community> scope = {});

/// Withdraws the blackhole route; traffic resumes at the next propagation.
void WithdrawRtbh(ixp::MemberRouter& victim, const net::Prefix4& prefix);

/// How many members actually act on a blackhole announcement (paper §2.4:
/// "almost 70% of these IXP members do not honor the blackholing community").
struct RtbhCompliance {
  std::size_t honoring = 0;
  std::size_t total = 0;

  [[nodiscard]] double honored_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(honoring) / static_cast<double>(total);
  }
};

/// Counts members (excluding the victim) currently blackholing `prefix`.
[[nodiscard]] RtbhCompliance MeasureCompliance(const ixp::Ixp& ixp, const net::Prefix4& prefix,
                                               bgp::Asn victim_asn);

}  // namespace stellar::mitigation
