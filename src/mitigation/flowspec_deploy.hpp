// Inter-domain Flowspec deployment model (paper §1.1/§4.2.1): the victim
// disseminates an RFC 5575 rule; each peer independently decides whether to
// accept it (trust, resource sharing and liability make inter-domain
// acceptance rare). Accepting peers filter matching traffic at *their* edge,
// i.e. before it enters the IXP. Rules round-trip through the real wire
// codec, so this baseline exercises the same NLRI bytes a router would see.
#pragma once

#include <map>
#include <vector>

#include "bgp/flowspec.hpp"
#include "util/rng.hpp"

namespace stellar::mitigation {

class InterdomainFlowspec {
 public:
  /// `acceptance_probability`: chance a given peer honors inter-domain
  /// Flowspec at all (decided once per peer, not per rule).
  InterdomainFlowspec(std::vector<bgp::Asn> peers, double acceptance_probability,
                      std::uint64_t seed);

  /// Disseminates a rule+action to all peers. The rule is encoded to NLRI
  /// bytes and re-decoded per receiving peer. Returns the number of peers
  /// that accepted and installed it.
  std::size_t announce(const bgp::flowspec::Rule& rule, const bgp::flowspec::Action& action);

  /// Withdraws every rule previously announced.
  void withdraw_all();

  /// Does `peer` filter this flow at its edge (before the IXP)?
  /// Rate-limit actions are approximated: a rule with a non-drop rate counts
  /// as matching only the excess share, which the fluid caller handles by
  /// querying `pass_fraction` instead.
  [[nodiscard]] bool peer_drops(bgp::Asn peer, const net::FlowKey& flow) const;

  [[nodiscard]] std::size_t accepting_peers() const;
  [[nodiscard]] bool peer_accepts(bgp::Asn peer) const;

 private:
  struct Installed {
    bgp::flowspec::Rule rule;
    bgp::flowspec::Action action;
  };

  std::map<bgp::Asn, bool> accepts_;
  std::map<bgp::Asn, std::vector<Installed>> installed_;
};

}  // namespace stellar::mitigation
