// Traffic Scrubbing Service (TSS) baseline (paper §1.1): traffic is diverted
// to a scrubbing center (BGP delegation / DNS redirection), classified with
// DPI, and the "clean" share is returned. Fine-grained but costly: recurring
// per-volume fees, setup time, rerouting latency, a capacity ceiling, and
// imperfect classification in both directions.
#pragma once

#include <span>
#include <vector>

#include "net/flow.hpp"

namespace stellar::mitigation {

class ScrubbingService {
 public:
  struct Config {
    double capacity_mbps = 500'000.0;    ///< Scrubbing-center ingress ceiling.
    double attack_detection_rate = 0.98; ///< Attack bytes correctly dropped.
    double false_positive_rate = 0.02;   ///< Benign bytes wrongly dropped.
    double added_latency_ms = 30.0;      ///< Detour through the scrubbing center.
    double cost_per_gb = 0.05;           ///< Recurring volume cost (arbitrary units).
    double subscription_setup_s = 1800.0;///< Onboarding + BGP/DNS redirection time.
  };

  explicit ScrubbingService(Config config) : config_(config) {}

  struct BinResult {
    std::vector<net::FlowSample> clean;   ///< Returned to the victim.
    double dropped_attack_mbps = 0.0;
    double dropped_benign_mbps = 0.0;     ///< Collateral of false positives.
    double passed_attack_mbps = 0.0;      ///< Missed by detection.
    double overload_dropped_mbps = 0.0;   ///< Beyond center capacity (indiscriminate).
    double cost = 0.0;                    ///< This bin's volume cost.
  };

  /// Scrubs one bin. `is_attack` is ground truth used to score the
  /// (imperfect) classifier; the classifier itself works on rates.
  [[nodiscard]] BinResult scrub(std::span<const net::FlowSample> diverted, double bin_s,
                                const std::function<bool(const net::FlowKey&)>& is_attack) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] double total_cost() const { return total_cost_; }
  void charge(double cost) { total_cost_ += cost; }

 private:
  Config config_;
  double total_cost_ = 0.0;
};

}  // namespace stellar::mitigation
