#include "mitigation/scrubbing.hpp"

#include <algorithm>

namespace stellar::mitigation {

ScrubbingService::BinResult ScrubbingService::scrub(
    std::span<const net::FlowSample> diverted, double bin_s,
    const std::function<bool(const net::FlowKey&)>& is_attack) const {
  BinResult result;
  double total_bytes = 0.0;
  for (const auto& s : diverted) total_bytes += static_cast<double>(s.bytes);
  const double capacity_bytes = config_.capacity_mbps * 1e6 / 8.0 * bin_s;
  // Beyond center capacity the overload is shed indiscriminately before
  // classification (this is how Tbps attacks defeat scrubbing: §1.1 "does
  // not cope with Tbps-level attacks").
  const double admit = total_bytes <= capacity_bytes || total_bytes == 0.0
                           ? 1.0
                           : capacity_bytes / total_bytes;

  for (const auto& s : diverted) {
    const double offered = static_cast<double>(s.bytes);
    const double admitted = offered * admit;
    result.overload_dropped_mbps += (offered - admitted) * 8.0 / 1e6 / bin_s;
    const bool attack = is_attack(s.key);
    const double pass_fraction =
        attack ? 1.0 - config_.attack_detection_rate : 1.0 - config_.false_positive_rate;
    const double passed = admitted * pass_fraction;
    const double dropped = admitted - passed;
    if (attack) {
      result.dropped_attack_mbps += dropped * 8.0 / 1e6 / bin_s;
      result.passed_attack_mbps += passed * 8.0 / 1e6 / bin_s;
    } else {
      result.dropped_benign_mbps += dropped * 8.0 / 1e6 / bin_s;
    }
    if (passed >= 1.0) {
      net::FlowSample out = s;
      out.bytes = static_cast<std::uint64_t>(passed);
      out.packets = static_cast<std::uint64_t>(
          static_cast<double>(s.packets) * (offered > 0.0 ? passed / offered : 0.0));
      result.clean.push_back(out);
    }
  }
  // Per-volume fee on everything carried to the center (that is the cost
  // model that makes TSS expensive for volumetric attacks).
  result.cost = total_bytes / 1e9 * config_.cost_per_gb;
  return result;
}

}  // namespace stellar::mitigation
