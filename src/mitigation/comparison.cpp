#include "mitigation/comparison.hpp"

#include <cmath>
#include <functional>
#include <sstream>

#include "core/stellar.hpp"
#include "mitigation/acl.hpp"
#include "mitigation/flowspec_deploy.hpp"
#include "mitigation/rtbh.hpp"
#include "mitigation/scrubbing.hpp"
#include "net/ports.hpp"
#include "traffic/generators.hpp"
#include "util/ascii.hpp"

namespace stellar::mitigation {

namespace {

constexpr bgp::Asn kVictimAsn = 63'000;

bool IsAttackFlow(const net::FlowKey& key) {
  return key.proto == net::IpProto::kUdp && key.src_port == net::kPortNtp;
}

/// Per-bin accounting of what reached the victim.
struct RunResult {
  std::vector<double> times;
  std::vector<double> attack_delivered_mbps;
  std::vector<double> benign_delivered_mbps;
  std::vector<double> attack_offered_mbps;
  std::vector<double> benign_offered_mbps;
  double tss_cost = 0.0;
  /// Trigger -> the technique's filters observably active (inf: never).
  double activation_s = std::numeric_limits<double>::infinity();
};

enum class Technique { kNone, kRtbh, kAcl, kTss, kFlowspec, kAdvancedBlackholing };

RunResult RunScenario(Technique technique, const ComparisonConfig& config) {
  sim::EventQueue queue;
  ixp::LargeIxpParams params;
  params.member_count = config.members;
  params.rtbh_honor_fraction = config.rtbh_honor_fraction;
  params.seed = config.seed;
  auto ixp = ixp::MakeLargeIxp(queue, params);

  ixp::MemberSpec victim_spec;
  victim_spec.asn = kVictimAsn;
  victim_spec.name = "victim";
  victim_spec.port_capacity_mbps = config.victim_port_mbps;
  victim_spec.address_space = net::Prefix4::Parse("100.10.10.0/24").value();
  auto& victim = ixp->add_member(victim_spec);
  ixp->settle(60.0);

  const net::IPv4Address target(100, 10, 10, 10);
  const net::Prefix4 target_host = net::Prefix4::HostRoute(target);
  auto sources = ixp->source_members(kVictimAsn);

  traffic::WebTrafficGenerator::Config web_config;
  web_config.target = target;
  web_config.rate_mbps = config.benign_mbps;
  traffic::WebTrafficGenerator web(web_config, sources, config.seed + 1);

  auto attack_config = traffic::BooterNtpAttack(target, config.attack_peak_mbps,
                                                config.attack_start_s, config.duration_s);
  traffic::AmplificationAttackGenerator attack(attack_config, sources, config.seed + 2);

  // Technique state.
  std::unique_ptr<core::StellarSystem> stellar_system;
  if (technique == Technique::kAdvancedBlackholing) {
    stellar_system = std::make_unique<core::StellarSystem>(*ixp);
  }
  MemberAclFilter acl(300.0);
  ScrubbingService tss(ScrubbingService::Config{});
  InterdomainFlowspec flowspec(
      [&] {
        std::vector<bgp::Asn> peers;
        for (const auto& m : ixp->members()) {
          if (m->info().asn != kVictimAsn) peers.push_back(m->info().asn);
        }
        return peers;
      }(),
      config.flowspec_acceptance, config.seed + 3);

  bool triggered = false;
  bool tss_active = false;
  double tss_active_from = 0.0;

  // Scenario time is relative to the end of setup: the IXP build-out already
  // advanced the simulation clock.
  const double base = queue.now().count();

  RunResult result;
  for (double t = 0.0; t < config.duration_s; t += config.bin_s) {
    queue.run_until(sim::Seconds(base + t));

    if (!triggered && t >= config.mitigation_trigger_s) {
      triggered = true;
      switch (technique) {
        case Technique::kNone:
          break;
        case Technique::kRtbh:
          TriggerRtbh(victim, target_host);
          break;
        case Technique::kAcl: {
          filter::FilterRule rule;
          rule.match.dst_prefix = target_host;
          rule.match.proto = net::IpProto::kUdp;
          rule.match.src_port = filter::PortRange::Single(net::kPortNtp);
          rule.action = filter::FilterAction::kDrop;
          acl.add_rule(t, rule);
          break;
        }
        case Technique::kTss:
          tss_active_from = t + tss.config().subscription_setup_s;
          tss_active = true;
          break;
        case Technique::kFlowspec: {
          bgp::flowspec::Rule rule;
          rule.components.push_back({bgp::flowspec::ComponentType::kDstPrefix, target_host, {}});
          rule.components.push_back({bgp::flowspec::ComponentType::kIpProtocol,
                                     {},
                                     {bgp::flowspec::Eq(17)}});
          rule.components.push_back({bgp::flowspec::ComponentType::kSrcPort,
                                     {},
                                     {bgp::flowspec::Eq(net::kPortNtp)}});
          flowspec.announce(rule, bgp::flowspec::Action{0.0f});
          break;
        }
        case Technique::kAdvancedBlackholing: {
          core::Signal signal;
          signal.rules.push_back({core::RuleKind::kUdpSrcPort, net::kPortNtp});
          core::SignalAdvancedBlackholing(victim, ixp->route_server(), target_host, signal);
          break;
        }
      }
      // Let the trigger's BGP events propagate into the controller before
      // this bin's traffic is generated (in-band signaling is sub-second;
      // the bin width would otherwise quantize the reaction time).
      queue.run_until(sim::Seconds(base + t + 2.0));
    }

    // Mechanism activation: first instant the technique's filters are live.
    if (triggered && std::isinf(result.activation_s)) {
      bool active = false;
      switch (technique) {
        case Technique::kNone:
          break;
        case Technique::kRtbh:
          active = MeasureCompliance(*ixp, target_host, kVictimAsn).honoring > 0;
          break;
        case Technique::kAcl:
          active = acl.rule_count(t) > 0;
          break;
        case Technique::kTss:
          active = tss_active && t >= tss_active_from;
          break;
        case Technique::kFlowspec:
          active = flowspec.accepting_peers() > 0;
          break;
        case Technique::kAdvancedBlackholing:
          active = ixp->edge_router().policy(victim.info().port).rule_count() > 0;
          break;
      }
      if (active) result.activation_s = t - config.mitigation_trigger_s;
    }

    // Offered load this bin.
    std::vector<net::FlowSample> offered = web.bin(t, config.bin_s);
    for (auto& s : attack.bin(t, config.bin_s)) offered.push_back(s);

    double attack_offered = 0.0;
    double benign_offered = 0.0;
    for (const auto& s : offered) {
      (IsAttackFlow(s.key) ? attack_offered : benign_offered) += s.mbps(config.bin_s);
    }

    // Flowspec removes traffic at accepting peers' edges, before the IXP.
    if (technique == Technique::kFlowspec && triggered) {
      std::vector<net::FlowSample> kept;
      kept.reserve(offered.size());
      for (const auto& s : offered) {
        ixp::MemberRouter* src = nullptr;
        for (const auto& m : ixp->members()) {
          if (m->info().mac == s.key.src_mac) {
            src = m.get();
            break;
          }
        }
        if (src != nullptr && flowspec.peer_drops(src->info().asn, s.key)) continue;
        kept.push_back(s);
      }
      offered = std::move(kept);
    }

    std::vector<net::FlowSample> delivered;
    if (technique == Technique::kTss && tss_active && t >= tss_active_from) {
      // Diversion: traffic detours via the scrubbing center, the clean share
      // is returned to the victim within its port capacity.
      auto scrubbed = tss.scrub(offered, config.bin_s, IsAttackFlow);
      result.tss_cost += scrubbed.cost;
      filter::QosPolicy empty;
      auto port = ApplyEgressQos(scrubbed.clean, empty, config.victim_port_mbps, config.bin_s);
      delivered = std::move(port.delivered);
    } else {
      auto report = ixp->deliver_bin(offered, config.bin_s);
      // Keep only flows that egressed at the victim's port.
      for (auto& s : report.delivered) {
        if (s.key.dst_ip == target ||
            victim_spec.address_space.contains(s.key.dst_ip)) {
          delivered.push_back(s);
        }
      }
    }

    // ACL filtering happens inside the victim's network, post-port.
    if (technique == Technique::kAcl) {
      auto post = acl.apply(t, delivered, config.bin_s);
      delivered = std::move(post.delivered);
    }

    double attack_delivered = 0.0;
    double benign_delivered = 0.0;
    for (const auto& s : delivered) {
      (IsAttackFlow(s.key) ? attack_delivered : benign_delivered) += s.mbps(config.bin_s);
    }
    result.times.push_back(t);
    result.attack_offered_mbps.push_back(attack_offered);
    result.benign_offered_mbps.push_back(benign_offered);
    result.attack_delivered_mbps.push_back(attack_delivered);
    result.benign_delivered_mbps.push_back(benign_delivered);
  }
  return result;
}

/// Mean over bins with time in [t0, t1).
double WindowMean(const RunResult& run, const std::vector<double>& series, double t0, double t1) {
  double sum = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < run.times.size(); ++i) {
    if (run.times[i] >= t0 && run.times[i] < t1) {
      sum += series[i];
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

}  // namespace

std::vector<TechniqueMetrics> RunComparison(const ComparisonConfig& config) {
  // After the slowest activation (TSS onboarding, 1800 s) plus settling.
  const double steady_t0 = config.mitigation_trigger_s + 1'860.0;
  const double steady_t1 = config.duration_s;

  struct Plan {
    Technique technique;
    TechniqueMetrics base;
  };
  std::vector<Plan> plans;
  {
    TechniqueMetrics m;
    m.name = "none";
    plans.push_back({Technique::kNone, m});
  }
  {
    TechniqueMetrics m;
    m.name = "TSS";
    m.signaling_messages = 1;
    m.cooperating_parties = 1;  // The scrubbing provider.
    m.telemetry = true;
    m.resource_sharing_required = true;
    m.scalability_gbps = ScrubbingService::Config{}.capacity_mbps / 1e3;
    m.added_latency_ms = ScrubbingService::Config{}.added_latency_ms;
    plans.push_back({Technique::kTss, m});
  }
  {
    TechniqueMetrics m;
    m.name = "ACL";
    m.signaling_messages = 0;
    m.cooperating_parties = 0;
    m.telemetry = false;
    m.resource_sharing_required = false;
    m.scalability_gbps = config.victim_port_mbps / 1e3;  // Port stays the bottleneck.
    plans.push_back({Technique::kAcl, m});
  }
  {
    TechniqueMetrics m;
    m.name = "RTBH";
    m.signaling_messages = 1;
    m.cooperating_parties = config.members;  // Everyone must honor.
    m.telemetry = false;
    m.resource_sharing_required = false;
    m.scalability_gbps = 25'000.0;  // IXP platform capacity.
    plans.push_back({Technique::kRtbh, m});
  }
  {
    TechniqueMetrics m;
    m.name = "Flowspec";
    m.signaling_messages = 1;
    m.cooperating_parties = config.members;  // Peers share their hardware.
    m.telemetry = false;
    m.resource_sharing_required = true;
    m.scalability_gbps = 25'000.0;
    plans.push_back({Technique::kFlowspec, m});
  }
  {
    TechniqueMetrics m;
    m.name = "AdvancedBH";
    m.signaling_messages = 1;
    m.cooperating_parties = 0;  // One-to-IXP signaling.
    m.telemetry = true;
    m.resource_sharing_required = false;
    m.scalability_gbps = 25'000.0;
    plans.push_back({Technique::kAdvancedBlackholing, m});
  }

  std::vector<TechniqueMetrics> out;
  for (auto& plan : plans) {
    const RunResult run = RunScenario(plan.technique, config);
    TechniqueMetrics m = plan.base;
    const double attack_offered = WindowMean(run, run.attack_offered_mbps, steady_t0, steady_t1);
    const double benign_offered = WindowMean(run, run.benign_offered_mbps, steady_t0, steady_t1);
    const double attack_delivered =
        WindowMean(run, run.attack_delivered_mbps, steady_t0, steady_t1);
    const double benign_delivered =
        WindowMean(run, run.benign_delivered_mbps, steady_t0, steady_t1);
    m.attack_delivered_pct = attack_offered > 0.0 ? attack_delivered / attack_offered * 100.0 : 0.0;
    m.benign_delivered_pct = benign_offered > 0.0 ? benign_delivered / benign_offered * 100.0 : 0.0;
    m.reaction_time_s =
        plan.technique == Technique::kNone ? 0.0 : run.activation_s;
    m.measured_cost = run.tss_cost;
    out.push_back(std::move(m));
  }
  return out;
}

std::string RenderComparisonTable(const std::vector<TechniqueMetrics>& rows) {
  std::ostringstream os;
  util::TextTable measured({"technique", "attack deliv [%]", "benign deliv [%]",
                            "reaction [s]", "msgs", "coop parties", "telemetry",
                            "res-sharing", "scale [Gbps]", "volume cost"});
  for (const auto& r : rows) {
    measured.add_row({r.name, util::FormatDouble(r.attack_delivered_pct, 1),
                      util::FormatDouble(r.benign_delivered_pct, 1),
                      std::isinf(r.reaction_time_s) ? "never"
                                                    : util::FormatDouble(r.reaction_time_s, 0),
                      std::to_string(r.signaling_messages), std::to_string(r.cooperating_parties),
                      r.telemetry ? "yes" : "no", r.resource_sharing_required ? "yes" : "no",
                      util::FormatDouble(r.scalability_gbps, 0),
                      util::FormatDouble(r.measured_cost, 2)});
  }
  os << measured.str() << '\n';

  // Paper-style qualitative marks. Thresholds:
  //   granularity      ok if benign survives (>70%) while attack suppressed (<30%)
  //   signaling        ok if <= 1 message and no out-of-band setup
  //   cooperation      ok if no third party must act
  //   resource sharing ok if no third-party resources consumed
  //   telemetry        from the structural flag
  //   scalability      ok if ceiling >= 1 Tbps-scale (here: platform-bound)
  //   reaction time    ok if < 60 s
  //   costs            ok if no per-volume fees
  util::TextTable marks({"dimension", "TSS", "ACL", "RTBH", "Flowspec", "AdvBH"});
  auto find = [&rows](const std::string& name) -> const TechniqueMetrics& {
    for (const auto& r : rows) {
      if (r.name == name) return r;
    }
    throw std::logic_error("missing technique " + name);
  };
  const auto order = {std::string("TSS"), std::string("ACL"), std::string("RTBH"),
                      std::string("Flowspec"), std::string("AdvancedBH")};
  auto row_for = [&](const std::string& dim,
                     const std::function<std::string(const TechniqueMetrics&)>& mark) {
    std::vector<std::string> cells{dim};
    for (const auto& name : order) cells.push_back(mark(find(name)));
    marks.add_row(std::move(cells));
  };
  row_for("granularity", [](const TechniqueMetrics& m) {
    return m.attack_delivered_pct < 30.0 && m.benign_delivered_pct > 70.0 ? "y" : "n";
  });
  row_for("cooperation", [](const TechniqueMetrics& m) {
    return m.cooperating_parties == 0 ? "y" : m.cooperating_parties == 1 ? "." : "n";
  });
  row_for("resource sharing",
          [](const TechniqueMetrics& m) { return m.resource_sharing_required ? "n" : "y"; });
  row_for("telemetry", [](const TechniqueMetrics& m) { return m.telemetry ? "y" : "n"; });
  row_for("scalability", [](const TechniqueMetrics& m) {
    return m.scalability_gbps >= 1'000.0 ? "y" : m.scalability_gbps >= 100.0 ? "." : "n";
  });
  row_for("reaction time", [](const TechniqueMetrics& m) {
    return m.reaction_time_s < 60.0 ? "y" : m.reaction_time_s < 600.0 ? "." : "n";
  });
  row_for("signaling complexity", [](const TechniqueMetrics& m) {
    // Simple = one in-band message that takes effect without anyone else
    // acting (RTBH's single message still needs every peer to honor it).
    return m.signaling_messages <= 1 && m.cooperating_parties == 0 &&
                   m.reaction_time_s < 60.0
               ? "y"
               : "n";
  });
  row_for("resources", [](const TechniqueMetrics& m) {
    // Mitigation runs on resources already in place (the IXP's spare
    // filtering capacity) rather than bought or borrowed ones.
    return !m.resource_sharing_required && m.scalability_gbps >= 1'000.0 ? "y" : "n";
  });
  row_for("performance", [](const TechniqueMetrics& m) {
    // No path stretch for clean traffic (TSS detours via the scrubbing
    // center).
    return m.added_latency_ms > 0.0 ? "n" : "y";
  });
  row_for("costs", [](const TechniqueMetrics& m) { return m.measured_cost > 0.0 ? "n" : "y"; });
  os << marks.str();
  return os.str();
}

}  // namespace stellar::mitigation
