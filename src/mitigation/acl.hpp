// ACL-filter baseline (paper §1.1): the victim deploys policy-based filters
// at its *own* border router — i.e. after traffic has already crossed its
// (possibly congested) IXP port. The filters themselves are as expressive as
// Stellar's, but they cannot protect the port: "given that the filtering
// location is beyond the ingress points of the network, the bandwidth to a
// neighbor AS can still be exhausted."
#pragma once

#include <span>

#include "filter/qos.hpp"

namespace stellar::mitigation {

class MemberAclFilter {
 public:
  /// `deploy_latency_s`: time from decision to filters being active — ACLs
  /// are configured by the member's NOC, not signaled in-band.
  explicit MemberAclFilter(double deploy_latency_s = 300.0)
      : deploy_latency_s_(deploy_latency_s) {}

  /// Requests a filter at time `now_s`; it becomes active after the
  /// deployment latency.
  void add_rule(double now_s, filter::FilterRule rule);
  void clear() { pending_.clear(); }

  /// Applies all rules active at `now_s` to traffic that already traversed
  /// the member's IXP port. Port congestion has already happened upstream.
  [[nodiscard]] filter::PortBinResult apply(double now_s,
                                            std::span<const net::FlowSample> delivered,
                                            double bin_s) const;

  [[nodiscard]] double deploy_latency_s() const { return deploy_latency_s_; }
  [[nodiscard]] std::size_t rule_count(double now_s) const;

 private:
  struct TimedRule {
    double active_from_s;
    filter::RuleId id;
    filter::FilterRule rule;
  };

  double deploy_latency_s_;
  std::vector<TimedRule> pending_;
  filter::RuleId next_id_ = 1;
};

}  // namespace stellar::mitigation
