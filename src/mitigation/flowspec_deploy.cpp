#include "mitigation/flowspec_deploy.hpp"

#include <stdexcept>

namespace stellar::mitigation {

InterdomainFlowspec::InterdomainFlowspec(std::vector<bgp::Asn> peers,
                                         double acceptance_probability, std::uint64_t seed) {
  util::Rng rng(seed);
  for (bgp::Asn peer : peers) accepts_[peer] = rng.chance(acceptance_probability);
}

std::size_t InterdomainFlowspec::announce(const bgp::flowspec::Rule& rule,
                                          const bgp::flowspec::Action& action) {
  // Real dissemination path: encode once, each acceptor decodes its copy.
  auto encoded = bgp::flowspec::EncodeNlri(rule);
  if (!encoded.ok()) {
    throw std::invalid_argument("InterdomainFlowspec: unencodable rule: " +
                                encoded.error().message);
  }
  std::size_t installed = 0;
  for (auto& [peer, accepted] : accepts_) {
    if (!accepted) continue;
    auto decoded = bgp::flowspec::DecodeNlri(*encoded);
    if (!decoded.ok()) continue;  // Defensive: codec round-trip is tested.
    installed_[peer].push_back(Installed{decoded->rule, action});
    ++installed;
  }
  return installed;
}

void InterdomainFlowspec::withdraw_all() { installed_.clear(); }

bool InterdomainFlowspec::peer_drops(bgp::Asn peer, const net::FlowKey& flow) const {
  const auto it = installed_.find(peer);
  if (it == installed_.end()) return false;
  for (const auto& entry : it->second) {
    if (!entry.rule.matches(flow)) continue;
    // traffic-rate 0 = drop; positive rates are handled fluidly by callers,
    // here any matching rule with rate 0 drops the flow at the peer edge.
    if (!entry.action.rate_limit_bytes_per_s.has_value() ||
        *entry.action.rate_limit_bytes_per_s == 0.0f) {
      return true;
    }
  }
  return false;
}

std::size_t InterdomainFlowspec::accepting_peers() const {
  std::size_t n = 0;
  for (const auto& [peer, accepted] : accepts_) {
    if (accepted) ++n;
  }
  return n;
}

bool InterdomainFlowspec::peer_accepts(bgp::Asn peer) const {
  const auto it = accepts_.find(peer);
  return it != accepts_.end() && it->second;
}

}  // namespace stellar::mitigation
