#include "mitigation/acl.hpp"

namespace stellar::mitigation {

void MemberAclFilter::add_rule(double now_s, filter::FilterRule rule) {
  pending_.push_back(TimedRule{now_s + deploy_latency_s_, next_id_++, std::move(rule)});
}

filter::PortBinResult MemberAclFilter::apply(double now_s,
                                             std::span<const net::FlowSample> delivered,
                                             double bin_s) const {
  filter::QosPolicy policy;
  for (const auto& timed : pending_) {
    if (timed.active_from_s <= now_s) policy.add_rule(timed.id, timed.rule);
  }
  // The member's internal links are provisioned for its port rate; apply with
  // effectively unlimited capacity — congestion was the IXP port's problem.
  return ApplyEgressQos(delivered, policy, 1e9, bin_s);
}

std::size_t MemberAclFilter::rule_count(double now_s) const {
  std::size_t n = 0;
  for (const auto& timed : pending_) {
    if (timed.active_from_s <= now_s) ++n;
  }
  return n;
}

}  // namespace stellar::mitigation
